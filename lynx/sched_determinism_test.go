package lynx_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/lynx"
	"repro/lynx/fault"
)

// updateGolden regenerates the scheduler-determinism golden traces:
//
//	go test ./lynx -run TestSchedulerGoldenTraces -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden traces")

// compareGolden pins got against the named golden file (rewriting it
// under -update-golden).
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	if len(got) == 0 {
		t.Fatal("no events emitted")
	}
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden trace (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSONL trace drifted from golden %s:\ngot %d bytes, want %d bytes",
			path, len(got), len(want))
	}
}

// TestSchedulerGoldenTraces pins the exact JSONL event stream of the
// figure-1 workload on every substrate, at SimWorkers 1, 2, and 4. The
// golden files were recorded before the fast-path scheduler rewrite
// (PR 2) and before the parallel engine existed; any scheduling-order
// or virtual-time drift in the discrete-event engine shows up here as a
// byte-level diff, and so would any worker-count dependence (figure 1
// is a single connected component, so every worker count must collapse
// to the identical serial run — on kernel substrates because they are
// never partitionable, on Ideal because one component is nothing to
// split). Regenerate deliberately with -update-golden.
func TestSchedulerGoldenTraces(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis, lynx.Ideal} {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", sub, workers), func(t *testing.T) {
				if *updateGolden && workers != 1 {
					t.Skip("goldens are recorded at SimWorkers=1")
				}
				var got bytes.Buffer
				runFigure1Cfg(t, lynx.Config{Substrate: sub, Seed: 1, SimWorkers: workers},
					&obs.JSONLExporter{W: &got})
				compareGolden(t, "golden_trace_"+sub.String()+".jsonl", got.Bytes())
			})
		}
	}
}

// runEchoTrio runs the parallel-engine acceptance workload: three
// independent client/server echo pairs — a boot-join graph with three
// connected components, the shape SimWorkers > 1 partitions on the
// Ideal substrate. Each client ships a few round trips with
// virtual-time pauses so shard clocks interleave nontrivially. Returns
// the JSONL trace and whether the parallel engine engaged.
func runEchoTrio(t *testing.T, cfg lynx.Config) ([]byte, bool) {
	t.Helper()
	sys := lynx.NewSystem(cfg)
	var buf bytes.Buffer
	sys.Obs().Attach(&obs.JSONLExporter{W: &buf})
	for i := 0; i < 3; i++ {
		i := i
		client := sys.Spawn(fmt.Sprintf("client-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			for n := 0; n < 3; n++ {
				reply, err := th.Connect(boot[0], "echo", lynx.Msg{Data: []byte{byte(i), byte(n)}})
				if err != nil {
					t.Errorf("client-%d: %v", i, err)
					return
				}
				if len(reply.Data) != 2 {
					t.Errorf("client-%d: bad echo %v", i, reply.Data)
				}
				th.Delay(lynx.Duration(i+1) * 100 * lynx.Microsecond)
			}
			th.Destroy(boot[0])
		})
		server := sys.Spawn(fmt.Sprintf("server-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		})
		sys.Join(client, server)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return buf.Bytes(), sys.Parallel()
}

// TestParallelWorkerGoldenTraces: a genuinely partitionable Ideal
// workload must produce byte-identical JSONL traces at every SimWorkers
// value, pinned against a golden recorded at SimWorkers=1 (i.e. by the
// plain serial engine). This is the tentpole determinism contract: the
// parallel engine's replay reconstructs the exact serial interleave.
func TestParallelWorkerGoldenTraces(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			cfg := lynx.Config{Substrate: lynx.Ideal, Seed: 7, SimWorkers: workers}
			got, parallel := runEchoTrio(t, cfg)
			if wantPar := workers > 1; parallel != wantPar {
				t.Fatalf("Parallel() = %v at SimWorkers=%d, want %v", parallel, workers, wantPar)
			}
			if *updateGolden && workers != 1 {
				t.Skip("goldens are recorded at SimWorkers=1")
			}
			compareGolden(t, "golden_trace_parallel_ideal.jsonl", got)
		})
	}
}

// TestFaultedWorkerInvariance: a faulted run is never partitionable
// (the injector is one mutable schedule), so every SimWorkers value
// must collapse to the identical serial run — byte for byte, without
// the parallel engine engaging.
func TestFaultedWorkerInvariance(t *testing.T) {
	plan := &fault.Plan{Events: []fault.Event{fault.Crash{Proc: "server-1", At: 300 * lynx.Microsecond}}}
	trace := func(workers int) []byte {
		cfg := lynx.Config{Substrate: lynx.Ideal, Seed: 7, SimWorkers: workers, Faults: plan}
		got, parallel := runFaultedTrio(t, cfg)
		if parallel {
			t.Fatalf("parallel engine engaged on a faulted run (SimWorkers=%d)", workers)
		}
		return got
	}
	base := trace(1)
	if len(base) == 0 {
		t.Fatal("no events emitted")
	}
	for _, workers := range []int{2, 4} {
		if got := trace(workers); !bytes.Equal(got, base) {
			t.Errorf("faulted trace differs at SimWorkers=%d: got %d bytes, want %d",
				workers, len(got), len(base))
		}
	}
}

// runFaultedTrio is runEchoTrio's crash-tolerant twin: clients swallow
// link errors (the fault plan kills server-1 mid-run) and the run is
// bounded in virtual time so the orphaned client cannot hang the test.
func runFaultedTrio(t *testing.T, cfg lynx.Config) ([]byte, bool) {
	t.Helper()
	sys := lynx.NewSystem(cfg)
	var buf bytes.Buffer
	sys.Obs().Attach(&obs.JSONLExporter{W: &buf})
	for i := 0; i < 3; i++ {
		i := i
		client := sys.Spawn(fmt.Sprintf("client-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			for n := 0; n < 3; n++ {
				if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: []byte{byte(i), byte(n)}}); err != nil {
					return // server crashed under us: expected for pair 1
				}
				th.Delay(lynx.Duration(i+1) * 100 * lynx.Microsecond)
			}
			th.Destroy(boot[0])
		})
		server := sys.Spawn(fmt.Sprintf("server-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		})
		sys.Join(client, server)
	}
	if err := sys.RunFor(20 * lynx.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	return buf.Bytes(), sys.Parallel()
}
