package lynx_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/lynx"
)

// updateGolden regenerates the scheduler-determinism golden traces:
//
//	go test ./lynx -run TestSchedulerGoldenTraces -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden traces")

// TestSchedulerGoldenTraces pins the exact JSONL event stream of the
// figure-1 workload on every substrate. The golden files were recorded
// before the fast-path scheduler rewrite (PR 2); any scheduling-order or
// virtual-time drift in the discrete-event engine shows up here as a
// byte-level diff. Regenerate deliberately with -update-golden.
func TestSchedulerGoldenTraces(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis, lynx.Ideal} {
		t.Run(sub.String(), func(t *testing.T) {
			var got bytes.Buffer
			runFigure1(t, sub, &obs.JSONLExporter{W: &got})
			if got.Len() == 0 {
				t.Fatal("no events emitted")
			}
			path := filepath.Join("testdata", "golden_trace_"+sub.String()+".jsonl")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden trace (run with -update-golden): %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("JSONL trace drifted from golden %s:\ngot %d bytes, want %d bytes",
					path, got.Len(), len(want))
			}
		})
	}
}
