// Package lynx is the public face of the LYNX reproduction: a
// distributed programming system in which processes interact through
// RPC-style request/reply traffic on movable duplex virtual circuits
// called links, exactly as in M. L. Scott's 1986 ICPP paper "The
// Interface Between Distributed Operating System and High-Level
// Programming Language".
//
// A System assembles a complete simulated machine: a virtual-time
// network, one of four operating-system substrates, and any number of
// LYNX processes. The substrates are the paper's three kernels plus an
// idealized baseline:
//
//	Charlotte — high-level kernel: links in the kernel, one outstanding
//	            activity per direction, one enclosure per message
//	            (VAX 11/750s on a 10 Mbit/s token ring)
//	SODA      — low-level kernel: advertised names, put/get/signal/
//	            exchange + accept, software interrupts
//	            (many nodes on a 1 Mbit/s CSMA bus)
//	Chrysalis — shared-memory primitives: memory objects, event blocks,
//	            dual queues (BBN Butterfly)
//	Ideal     — a perfect in-memory kernel (reference/baseline)
//
// Typical use:
//
//	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Chrysalis})
//	client := sys.Spawn("client", func(t *lynx.Thread, boot []*lynx.End) {
//	    reply, err := t.Connect(boot[0], "hello", lynx.Msg{Data: []byte("hi")})
//	    ...
//	})
//	server := sys.Spawn("server", func(t *lynx.Thread, boot []*lynx.End) {
//	    t.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
//	        st.Reply(req, lynx.Msg{Data: req.Data()})
//	    })
//	})
//	sys.Join(client, server)
//	err := sys.Run()
//
// The language-level API (Connect, Receive, Reply, Serve, NewLink,
// Destroy, Fork, link movement by enclosing ends in Msg.Links) lives on
// Thread; see the aliased types' documentation in internal/core.
//
// # Concurrency
//
// A System is single-threaded: one System (and everything reachable
// from it — Threads, Ends, its metrics) must be driven by one
// goroutine-tree at a time, and Run is not safe to call concurrently on
// the same System. Distinct Systems, however, share no mutable state —
// no package-level variables, no global clocks or random sources (every
// System carries its own seeded generator and virtual clock) — so any
// number of Systems may run concurrently on separate goroutines. This
// "one System per goroutine-tree, many Systems in parallel" contract is
// what the lynx/sweep harness exploits to fan replicated simulations
// across cores while keeping each run bit-for-bit deterministic in its
// seed.
//
// # Parallel execution inside one System
//
// When the boot-join graph splits into two or more connected
// components, the System partitions the run: each component becomes one
// shard of a conservative parallel discrete-event engine
// (sim.EnterParallel), with its own event loop, its own segment of the
// network medium, and its own slice of the kernel's state. What
// licenses the split on the kernel substrates is finite lookahead: the
// medium's MinLatency (token-ring serialization, CSMA sense delay,
// backplane setup cost) lower-bounds every cross-node interaction, and
// since boot components never share a link, groups can only couple
// through medium state — which the per-group segments privatize
// (occupancy, counters, forked rng streams). The Ideal fabric, having
// no shared medium, is trivially partitionable.
//
// Partitioning happens whenever the topology is eligible, at every
// SimWorkers value; Config.SimWorkers only caps how many shards execute
// concurrently (<= 1 runs the shards sequentially on one OS thread).
// Decoupling the partition decision from the worker count is what makes
// the determinism contract absolute: per-group id allocators, rng
// streams, and fault schedules are fixed by the topology alone, so a
// run at any SimWorkers value produces byte-identical traces, metrics,
// and results to SimWorkers=1 with the same seed — observers replay in
// the exact serial interleave. A single-component (or single-process)
// topology has nothing to split and runs the ordinary serial loop.
//
// Fault plans compile onto a partitioned run as per-shard schedules:
// each group's medium segment gets its own injector child (frame fates
// from a per-group stream, storms replicated per segment) and churn
// timers fire on each shard against that shard's processes, so faulted
// runs parallelize like unfaulted ones. Dynamic process creation
// (Launch/LaunchGroup) places the new group on the launcher's home
// shard — kernel processes, transports, and boot links all allocate
// from that group's strided id space — so mid-run launches need no
// cross-shard coordination and keep the byte-identity guarantee.
package lynx

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	chbind "repro/internal/bind/charlotte"
	chrbind "repro/internal/bind/chrysalis"
	"repro/internal/bind/ideal"
	sodabind "repro/internal/bind/soda"
	"repro/internal/calib"
	"repro/internal/charlotte"
	"repro/internal/chrysalis"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sim"
	"repro/internal/soda"
	"repro/lynx/fault"
)

// Re-exported language-level types: the Thread API is the LYNX
// programming model.
type (
	// Thread is a LYNX thread of control (coroutine); all language
	// operations hang off it.
	Thread = core.Thread
	// End is one end of a link owned by the current process.
	End = core.End
	// Msg is a message: parameter bytes plus link ends to move.
	Msg = core.Msg
	// Request is an incoming remote operation awaiting a Reply.
	Request = core.Request
	// Process is a LYNX process.
	Process = core.Process
	// Duration and Time are virtual-time measures.
	Duration = sim.Duration
	// Time is a virtual-time instant.
	Time = sim.Time
)

// Virtual-time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// The LYNX exception set (see internal/core for semantics).
var (
	ErrLinkDestroyed = core.ErrLinkDestroyed
	ErrAborted       = core.ErrAborted
	ErrUnwantedReply = core.ErrUnwantedReply
	ErrBadReply      = core.ErrBadReply
)

// Substrate selects the operating-system kernel underneath the run-time
// package.
type Substrate int

// Available substrates.
const (
	Charlotte Substrate = iota
	SODA
	Chrysalis
	Ideal
)

func (s Substrate) String() string {
	switch s {
	case Charlotte:
		return "charlotte"
	case SODA:
		return "soda"
	case Chrysalis:
		return "chrysalis"
	case Ideal:
		return "ideal"
	default:
		return fmt.Sprintf("Substrate(%d)", int(s))
	}
}

// ParseSubstrate is the inverse of Substrate.String: it resolves the
// lowercase substrate name the CLIs and the lynxd job API use.
func ParseSubstrate(name string) (Substrate, error) {
	switch name {
	case "charlotte":
		return Charlotte, nil
	case "soda":
		return SODA, nil
	case "chrysalis":
		return Chrysalis, nil
	case "ideal":
		return Ideal, nil
	default:
		return 0, fmt.Errorf("unknown substrate %q (want charlotte, soda, chrysalis or ideal)", name)
	}
}

// ParseSubstrates resolves a comma-separated substrate list (spaces
// around names are ignored); the list must be non-empty.
func ParseSubstrates(csv string) ([]Substrate, error) {
	var out []Substrate
	for _, name := range strings.Split(csv, ",") {
		s, err := ParseSubstrate(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty substrate list")
	}
	return out, nil
}

// Config parameterizes a System. The zero value is a working Charlotte
// machine with default sizing. Substrate-specific knobs live in the
// per-substrate option blocks; options for substrates other than the
// selected one are ignored.
type Config struct {
	// Substrate picks the kernel. Default Charlotte.
	Substrate Substrate
	// Seed drives all randomness; same seed ⇒ identical run.
	Seed uint64
	// Nodes is the machine size (processes are placed round-robin).
	// Default 20 (the Crystal multicomputer's size).
	Nodes int
	// BufCap is the maximum message size, inherited by every substrate
	// whose own BufCap is unset. Default 4096.
	BufCap int
	// SimWorkers caps how many event-loop shards execute concurrently
	// inside this System. The run is partitioned into shards whenever
	// the boot-join graph has >= 2 connected components and the medium
	// has finite lookahead (netsim.MinLatency > 0, true of every
	// substrate under default calibration) — independent of this value;
	// SimWorkers <= 1 (the default) then runs the shards sequentially
	// on one OS thread while > 1 runs up to that many concurrently.
	// SimWorkers never changes results: same seed ⇒ byte-identical
	// traces and metrics at every worker count, so it is excluded from
	// sweep cache keys.
	SimWorkers int

	// Trace configures the flight recorder (internal/obs/flight): a
	// bounded ring of the last-N protocol events with full, sampled, or
	// counters-only export. The zero value (mode Off) creates no
	// recorder and leaves the untraced fast path untouched. Like
	// SimWorkers, the mode never changes simulation results — it only
	// shapes what is recorded — so it is excluded from sweep cache keys.
	Trace TraceOptions

	// Faults is an optional declarative fault plan (crash/restart
	// schedules, frame drop/duplication/reorder, partitions, slow
	// nodes, link storms — see lynx/fault). The plan compiles onto the
	// network's fault hook and virtual-time timers when Run starts —
	// per shard, on a partitioned run — and a faulted run is still a
	// pure function of (Config, Seed). Nil or empty injects nothing,
	// leaving the run byte-identical to an unfaulted one. An invalid
	// plan panics at NewSystem (it is a configuration error; validate
	// plans with fault.Parse).
	Faults *fault.Plan

	// Charlotte, SODA, and Chrysalis hold the substrate-specific knobs.
	Charlotte CharlotteOptions
	SODA      SODAOptions
	Chrysalis ChrysalisOptions

	// Tuned applies the Chrysalis §5.3 "30-40%" optimizations (E9).
	//
	// Deprecated: set Chrysalis.Tuned instead.
	Tuned bool
	// SODAPairLimit caps outstanding requests between one process pair.
	//
	// Deprecated: set SODA.PairLimit instead.
	SODAPairLimit int
}

// System is one simulated machine running LYNX processes.
type System struct {
	cfg     Config
	sodaCfg sodabind.Config // lowered from cfg.SODA at NewSystem
	env     *sim.Env

	charK *charlotte.Kernel
	sodaK *soda.Kernel
	chrK  *chrysalis.Kernel
	fab   *ideal.Fabric
	net   netsim.Network

	inj *fault.Injector
	fr  *flight.Recorder

	specs    []*ProcRef
	byProc   map[*core.Process]*ProcRef
	nextNode int
	ran      bool

	// mu guards specs/byProc and the node-placement cursors once the run
	// has started: under a partitioned run, Launch appends from
	// concurrently executing shards.
	mu sync.Mutex

	// joins records boot-time Join edges as spec-index pairs; materialize
	// runs union-find over them to find independent components.
	joins [][2]int
	// partitioned is set when materialize split the run into shards
	// (at any SimWorkers value); parallel additionally requires
	// SimWorkers > 1, i.e. shards actually executing concurrently.
	partitioned bool
	parallel    bool
	// shards are the per-group envs of a partitioned run; segs the
	// per-group medium segments (nil on Ideal, which has no medium).
	shards []*sim.Env
	segs   []netsim.Network
	// groupNode are per-group node-placement cursors for mid-run
	// launches, each starting from the boot cursor frozen at partition
	// time so placement is a group-local (worker-count-invariant)
	// sequence.
	groupNode []int
	// injKids are the per-group fault injectors of a partitioned faulted
	// run; churnHits counts, per churn event, how many processes it hit
	// across all groups (shared atomics — misses are derived at
	// FaultStats time).
	injKids   []*fault.Injector
	churnHits []int64
}

// ProcRef names a spawned process before and after Run.
type ProcRef struct {
	sys   *System
	name  string
	idx   int // position in sys.specs (component lookup)
	group int // partition group (home shard), -1 when unpartitioned
	main  func(*Thread, []*End)
	tr    core.Transport
	boots []core.TransEnd
	proc  *core.Process

	chTr   *chbind.Transport
	sodaTr *sodabind.Transport
	chrTr  *chrbind.Transport
	idTr   *ideal.Transport
}

// NewSystem creates a simulated machine.
func NewSystem(cfg Config) *System {
	cfg = cfg.normalized()
	env := sim.NewEnv(cfg.Seed)
	s := &System{cfg: cfg, sodaCfg: cfg.SODA.bindConfig(), env: env,
		byProc: make(map[*core.Process]*ProcRef)}
	switch cfg.Substrate {
	case Charlotte:
		ring := netsim.NewTokenRing(cfg.Nodes)
		s.net = ring
		s.charK = charlotte.NewKernel(env, ring, calib.DefaultCharlotte())
	case SODA:
		bus := netsim.NewCSMABus(env.Rand().Fork())
		s.net = bus
		s.sodaK = soda.NewKernel(env, bus, calib.DefaultSODA())
		s.sodaK.PairLimit = cfg.SODA.PairLimit
	case Chrysalis:
		bp := netsim.NewBackplane()
		s.net = bp
		s.chrK = chrysalis.NewKernel(env, bp, calib.DefaultChrysalis())
		if cfg.Chrysalis.Tuned {
			s.chrK.TuneFactor = calib.ChrysalisTunedFactor
		}
	case Ideal:
		s.fab = ideal.NewFabric(env, 100*sim.Microsecond, 100*sim.Nanosecond)
	default:
		panic(fmt.Sprintf("lynx: unknown substrate %v", cfg.Substrate))
	}
	if cfg.Trace.Mode != flight.Off {
		// The flight recorder attaches as an ordinary obs sink, which
		// makes the recorder Active(): instrumented code builds events
		// and (under a parallel partition) replays them in serial
		// order — the property the sampled mode's determinism rests on.
		s.fr = flight.New(flight.Config{
			Mode:    cfg.Trace.Mode,
			SampleK: cfg.Trace.SampleK,
			Ring:    cfg.Trace.Ring,
			Seed:    cfg.Seed,
		})
		s.Obs().Attach(s.fr)
	}
	if !cfg.Faults.Empty() {
		// The plan is validated (and the injector built) here, but it
		// compiles onto hooks and timers at materialize — after the
		// partition decision — so a partitioned run can install
		// per-group children instead of one shared schedule.
		s.inj = fault.NewInjector(env, cfg.Faults, cfg.Seed, cfg.Nodes)
	}
	return s
}

// installFaults compiles the fault plan onto the (possibly partitioned)
// run: fault hooks on the medium, storm timer chains, churn timers.
// Called from materialize, after planParallel has decided the shape of
// the run.
func (s *System) installFaults() {
	if s.inj == nil {
		return
	}
	if !s.partitioned {
		if s.net != nil {
			s.net.SetFaultHook(s.inj)
			s.inj.StartStorms(s.net)
		}
		s.scheduleChurn()
		return
	}
	s.injKids = s.inj.Split(s.shards)
	for g, seg := range s.segs {
		// Each group's segment gets its own injector child: frame fates
		// draw from a per-group stream, and each segment runs a full
		// replica of every storm's arrival schedule (a storm models
		// medium load, which each segment now carries independently).
		seg.SetFaultHook(s.injKids[g])
		s.injKids[g].StartStorms(seg)
	}
	s.scheduleChurnPartitioned()
}

// scheduleChurn registers the plan's process-level events as
// virtual-time timers. Names are resolved at fire time over the
// then-current process population (which grows under Launch), in spawn
// order, so the event schedule composes with dynamic workloads; an
// event that resolves to nothing is counted as a miss.
func (s *System) scheduleChurn() {
	for _, ev := range s.cfg.Faults.Events {
		switch e := ev.(type) {
		case fault.Crash:
			proc := e.Proc
			s.env.At(sim.Time(e.At), func() {
				if s.crashMatching(proc, -1, s.inj) == 0 {
					s.inj.Note("miss")
				}
			})
		case fault.Restart:
			proc := e.Proc
			s.env.At(sim.Time(e.At), func() {
				if s.restartNamed(proc, -1) {
					s.inj.Note("restart")
				} else {
					s.inj.Note("miss")
				}
			})
		}
	}
}

// scheduleChurnPartitioned is scheduleChurn for a partitioned run: each
// churn event is scheduled on EVERY shard env and acts only on that
// shard's processes, through that shard's injector child — so a crash
// pattern spanning groups kills each group's matches at that group's
// virtual time with no cross-shard access. Per-event hit counters are
// shared atomics; an event no shard matched surfaces as a miss in
// FaultStats.
func (s *System) scheduleChurnPartitioned() {
	nChurn := 0
	for _, ev := range s.cfg.Faults.Events {
		switch ev.(type) {
		case fault.Crash, fault.Restart:
			nChurn++
		}
	}
	s.churnHits = make([]int64, nChurn)
	j := 0
	for _, ev := range s.cfg.Faults.Events {
		switch e := ev.(type) {
		case fault.Crash:
			proc := e.Proc
			hit := &s.churnHits[j]
			j++
			for g := range s.shards {
				g := g
				s.shards[g].At(sim.Time(e.At), func() {
					if n := s.crashMatching(proc, g, s.injKids[g]); n > 0 {
						atomic.AddInt64(hit, int64(n))
					}
				})
			}
		case fault.Restart:
			proc := e.Proc
			hit := &s.churnHits[j]
			j++
			for g := range s.shards {
				g := g
				s.shards[g].At(sim.Time(e.At), func() {
					if s.restartNamed(proc, g) {
						s.injKids[g].Note("restart")
						atomic.AddInt64(hit, 1)
					}
				})
			}
		}
	}
}

// snapshotSpecs copies the spec list under the lock; shards launching
// mid-run append concurrently.
func (s *System) snapshotSpecs() []*ProcRef {
	s.mu.Lock()
	out := append([]*ProcRef(nil), s.specs...)
	s.mu.Unlock()
	return out
}

// crashMatching kills every live process whose name matches pattern
// (exact, or a trailing-* prefix like "u1.*") and returns how many it
// killed. With g >= 0 only processes homed on group g are touched (the
// group filter reads only the immutable group field of foreign specs,
// never their procs).
func (s *System) crashMatching(pattern string, g int, inj *fault.Injector) int {
	n := 0
	for _, pr := range s.snapshotSpecs() {
		if g >= 0 && pr.group != g {
			continue
		}
		if pr.proc == nil || pr.proc.Dead() || !nameMatches(pattern, pr.name) {
			continue
		}
		pr.proc.Crash()
		inj.Note("crash")
		n++
	}
	return n
}

func nameMatches(pattern, name string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(name, prefix)
	}
	return pattern == name
}

// restartNamed starts a fresh incarnation of the named process: a new
// process with the same name and main function, placed round-robin
// like any launch, with an empty boot slice — a restarted process
// re-acquires capabilities through the substrate (Discover, Launch);
// it inherits nothing from the dead incarnation. Returns false when no
// spec carries the name. With g >= 0 (a partitioned run's per-shard
// churn timer) only a spec homed on group g qualifies, and the new
// incarnation is born on that same shard.
func (s *System) restartNamed(name string, g int) bool {
	var src *ProcRef
	for _, pr := range s.snapshotSpecs() {
		if pr.name == name && (g < 0 || pr.group == g) {
			src = pr
			break
		}
	}
	if src == nil {
		return false
	}
	child := s.newProcRef(src.name, src.main, g)
	env := s.env
	if g >= 0 {
		env = s.shards[g]
	}
	costs := s.runtimeCosts()
	child.proc = core.NewProcess(env, child.name, child.tr, costs, func(t *Thread) {
		child.main(t, nil)
	})
	s.mu.Lock()
	s.byProc[child.proc] = child
	s.mu.Unlock()
	return true
}

// FaultStats returns the fault injector's per-effect occurrence
// counters (drop, dup, reorder, partition, slow, storm, crash,
// restart, miss), or nil when the system runs without a fault plan.
// On a partitioned run it aggregates the per-group injector children
// and derives misses from the shared per-event hit counters; read it
// from serial context (before the run or after it ends).
func (s *System) FaultStats() map[string]int64 {
	if s.inj == nil {
		return nil
	}
	out := s.inj.Counts()
	for i := range s.churnHits {
		if atomic.LoadInt64(&s.churnHits[i]) == 0 {
			out["miss"]++
		}
	}
	return out
}

// Env exposes the simulation environment (tracing, custom events).
func (s *System) Env() *sim.Env { return s.env }

// Network exposes the network model's counters (nil for Ideal).
func (s *System) Network() netsim.Network { return s.net }

// Spawn declares a LYNX process. main receives the process's main
// thread and its boot links (one per Join involving this process, in
// call order). Must be called before Run.
func (s *System) Spawn(name string, main func(t *Thread, boot []*End)) *ProcRef {
	if s.ran {
		panic("lynx: Spawn after Run")
	}
	return s.newProcRef(name, main, -1)
}

// newProcRef allocates a spec and its substrate transport (shared by
// Spawn, Launch, and restart). g >= 0 homes the process on that
// partition group: kernel process and transport allocate from the
// group's strided id space, node placement advances the group's own
// cursor, and the transport is born on the group's shard env.
func (s *System) newProcRef(name string, main func(*Thread, []*End), g int) *ProcRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	pr := &ProcRef{sys: s, name: name, idx: len(s.specs), group: g, main: main}
	env := s.env
	var node netsim.NodeID
	if g >= 0 {
		node = netsim.NodeID(s.groupNode[g] % s.cfg.Nodes)
		s.groupNode[g]++
		env = s.shards[g]
	} else {
		node = netsim.NodeID(s.nextNode % s.cfg.Nodes)
		s.nextNode++
	}
	switch s.cfg.Substrate {
	case Charlotte:
		var kp *charlotte.Process
		if g >= 0 {
			kp = s.charK.NewProcessIn(g, node)
		} else {
			kp = s.charK.NewProcess(node)
		}
		pr.chTr = chbind.New(env, kp, s.cfg.Charlotte.BufCap)
		pr.tr = pr.chTr
	case SODA:
		var kp *soda.Process
		if g >= 0 {
			kp = s.sodaK.NewProcessIn(g, node)
		} else {
			kp = s.sodaK.NewProcess(node)
		}
		pr.sodaTr = sodabind.New(env, s.sodaK, kp, s.sodaCfg)
		pr.tr = pr.sodaTr
	case Chrysalis:
		var kp *chrysalis.Process
		if g >= 0 {
			kp = s.chrK.NewProcessIn(g, node)
		} else {
			kp = s.chrK.NewProcess(node)
		}
		pr.chrTr = chrbind.New(env, s.chrK, kp, s.cfg.Chrysalis.BufCap)
		pr.tr = pr.chrTr
	case Ideal:
		if g >= 0 {
			pr.idTr = s.fab.NewTransportIn(g, pr.name)
			pr.idTr.SetEnv(env)
		} else {
			pr.idTr = s.fab.NewTransport(pr.name)
		}
		pr.tr = pr.idTr
	}
	s.specs = append(s.specs, pr)
	return pr
}

// Join wires a boot-time link between two processes (the loader handing
// newborn processes their initial links). Each call appends one end to
// each process's boot slice. Must precede Run.
func (s *System) Join(a, b *ProcRef) {
	if s.ran {
		panic("lynx: Join after Run (use Launch for dynamic processes)")
	}
	s.join(a, b)
}

// join wires the link; shared by Join and Launch. Boot-time joins are
// recorded for the component analysis that drives parallel execution.
func (s *System) join(a, b *ProcRef) {
	if !s.ran {
		s.joins = append(s.joins, [2]int{a.idx, b.idx})
	}
	var ta, tb core.TransEnd
	switch s.cfg.Substrate {
	case Charlotte:
		ea, eb := s.charK.BootLink(a.chTr.KernelProcess(), b.chTr.KernelProcess())
		ta = a.chTr.AdoptBootEnd(ea)
		tb = b.chTr.AdoptBootEnd(eb)
	case SODA:
		ta, tb = sodabind.BootLink(a.sodaTr, b.sodaTr)
	case Chrysalis:
		ta, tb = chrbind.BootLink(a.chrTr, b.chrTr)
	case Ideal:
		ea, eb, err := a.idTr.MakeLink()
		if err != nil {
			panic(err)
		}
		ideal.MoveOwnership(s.fab, a.idTr, b.idTr, eb.(ideal.EndID))
		ta, tb = ea, eb
	}
	a.boots = append(a.boots, ta)
	b.boots = append(b.boots, tb)
}

// runtimeCosts returns the calibrated run-time package overhead for the
// configured substrate.
func (s *System) runtimeCosts() calib.LynxRuntimeCosts {
	switch s.cfg.Substrate {
	case Charlotte:
		return calib.DefaultCharlotteRuntime()
	case SODA:
		return calib.DefaultSODARuntime()
	case Chrysalis:
		return calib.DefaultChrysalisRuntime()
	default:
		return calib.LynxRuntimeCosts{PerOperation: 10 * sim.Microsecond}
	}
}

// planParallel decides whether this run is partitionable and, when it
// is, splits it. Eligibility is topology-and-medium only: at least two
// boot-join connected components, over a medium with finite lookahead
// (netsim.MinLatency > 0 certifies that groups can only couple through
// the state the per-group segments privatize; the Ideal fabric has no
// medium and is trivially eligible). SimWorkers does NOT gate the
// split — a partitioned run at Workers=1 executes its shards
// sequentially — because the partition fixes id allocators, rng
// streams, and fault schedules, and those must be identical at every
// worker count for the byte-identity contract to hold.
//
// When eligible it partitions the env into one shard per component,
// splits the medium into per-group segments, partitions the kernel's
// state, and returns the spec → shard mapping; otherwise it returns
// the identity mapping onto the serial env.
func (s *System) planParallel() func(*ProcRef) *sim.Env {
	serial := func(*ProcRef) *sim.Env { return s.env }
	if len(s.specs) < 2 {
		return serial
	}
	if s.cfg.Substrate != Ideal && netsim.MinLatency(s.net) <= 0 {
		return serial
	}
	// Union-find over the boot-join edges.
	parent := make([]int, len(s.specs))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, j := range s.joins {
		if ra, rb := find(j[0]), find(j[1]); ra != rb {
			parent[rb] = ra
		}
	}
	// Number components in first-appearance (spawn) order so the
	// spec → shard mapping is deterministic.
	groupOf := make(map[int]int)
	comp := make([]int, len(s.specs))
	for i := range s.specs {
		r := find(i)
		g, ok := groupOf[r]
		if !ok {
			g = len(groupOf)
			groupOf[r] = g
		}
		comp[i] = g
	}
	k := len(groupOf)
	if k < 2 {
		return serial
	}
	workers := s.cfg.SimWorkers
	if workers < 1 {
		workers = 1
	}
	rec := s.Obs()
	shards := s.env.EnterParallel(sim.ParallelOptions{
		Groups:  k,
		Workers: workers,
		// Lookahead 0: components never interact, windows are unbounded.
		Lookahead: 0,
		// Observers (obs sinks, exporters) attach between NewSystem and
		// Run; consult the recorder at run time so they still replay in
		// serial order.
		ObservedFn: func() bool { return rec.Active() },
	})
	s.shards = shards
	s.partitioned = true
	s.parallel = workers > 1
	for i, pr := range s.specs {
		pr.group = comp[i]
	}
	// Mid-run launches place round-robin per group, each cursor starting
	// from the boot cursor frozen here.
	s.groupNode = make([]int, k)
	for g := range s.groupNode {
		s.groupNode[g] = s.nextNode
	}
	// Split the medium into per-group segments and shard the kernel.
	switch s.cfg.Substrate {
	case Charlotte:
		rings := s.net.(*netsim.TokenRing).Partition(k)
		s.segs = make([]netsim.Network, k)
		for i, r := range rings {
			s.segs[i] = r
		}
		s.charK.Partition(shards, s.segs)
	case SODA:
		buses := s.net.(*netsim.CSMABus).Partition(k)
		s.segs = make([]netsim.Network, k)
		for i, b := range buses {
			s.segs[i] = b
		}
		s.sodaK.Partition(shards, buses)
	case Chrysalis:
		bps := s.net.(*netsim.Backplane).Partition(k)
		s.segs = make([]netsim.Network, k)
		for i, bp := range bps {
			s.segs[i] = bp
		}
		s.chrK.Partition(shards, bps)
	case Ideal:
		s.fab.Partition(k)
	}
	return func(pr *ProcRef) *sim.Env { return shards[pr.group] }
}

// Parallel reports whether shards actually execute concurrently this
// run: the topology partitioned AND SimWorkers > 1. False until Run,
// and false for partitioned runs driven serially (SimWorkers <= 1),
// which are byte-identical to the concurrent ones. Partitioned reports
// the split itself.
func (s *System) Parallel() bool { return s.parallel }

// Partitioned reports whether materialize split this run into
// shard-per-component (at any SimWorkers value).
func (s *System) Partitioned() bool { return s.partitioned }

// assignGroup moves a boot spec onto its partition group: the kernel
// process (or ideal transport) joins the group's strided id space and
// the binding's timers/emissions move to the shard env — before any
// simproc exists, so nothing is in flight.
func (pr *ProcRef) assignGroup(g int, env *sim.Env) {
	switch {
	case pr.chTr != nil:
		pr.chTr.KernelProcess().AssignGroup(g)
		pr.chTr.SetEnv(env)
	case pr.sodaTr != nil:
		pr.sodaTr.KernelProcess().AssignGroup(g)
		pr.sodaTr.SetEnv(env)
	case pr.chrTr != nil:
		pr.chrTr.KernelProcess().AssignGroup(g)
		pr.chrTr.SetEnv(env)
	case pr.idTr != nil:
		pr.idTr.AssignGroup(g)
		pr.idTr.SetEnv(env)
	}
}

// materialize creates the core processes (idempotent).
func (s *System) materialize() {
	if s.ran {
		return
	}
	s.ran = true
	envFor := s.planParallel()
	s.installFaults()
	costs := s.runtimeCosts()
	for _, pr := range s.specs {
		spec := pr
		env := envFor(pr)
		if s.partitioned {
			// Both ends of every link live in one component, so a
			// link's traffic always runs on one shard.
			pr.assignGroup(pr.group, env)
		}
		pr.proc = core.NewProcess(env, spec.name, spec.tr, costs, func(t *Thread) {
			boot := make([]*End, len(spec.boots))
			for i, te := range spec.boots {
				boot[i] = t.AdoptBootEnd(te)
			}
			spec.main(t, boot)
		})
		s.byProc[pr.proc] = pr
	}
}

// Launch creates a NEW process while the system is running — the paper's
// "processes designed in isolation, and compiled and loaded at disparate
// times" (§2). It must be called from a running thread of an existing
// process (the launcher plays loader). The child is connected to the
// launcher by a fresh boot link; the launcher's end is returned, and the
// child receives its end as boot[0].
func (s *System) Launch(t *Thread, name string, main func(t *Thread, boot []*End)) (*End, *ProcRef) {
	end, refs := s.LaunchGroup(t, []ProcSpec{{Name: name, Main: main}}, nil)
	return end, refs[0]
}

// ProcSpec describes one process of a dynamically-launched group: its
// name and main function, exactly as passed to Spawn.
type ProcSpec struct {
	Name string
	Main func(t *Thread, boot []*End)
}

// LaunchGroup creates a set of NEW processes mid-run as one wired unit —
// the dynamic-composition counterpart of Spawn+Join. Each wires entry
// {a, b} wires a fresh boot link between specs[a] and specs[b] (indices
// into specs, a ≠ b), in order. The launcher is joined to specs[0], the
// group's head, and the launcher's end of that link is returned.
//
// Boot-slice layout: the head receives the launcher link as boot[0]
// followed by its wire ends in wires order; every other process receives
// only its wire ends, in wires order. Like Launch, LaunchGroup must be
// called from a running thread of an existing process; the group's
// processes start once the launcher next yields the processor.
//
// This is the minimal surface an in-simulation workload generator needs:
// one call assembles a multi-process work unit (an echo pair, a
// pipeline, a mesh) with its internal topology, handing the generator a
// single link on which the unit reports completion.
func (s *System) LaunchGroup(t *Thread, specs []ProcSpec, wires [][2]int) (*End, []*ProcRef) {
	if !s.ran {
		panic("lynx: LaunchGroup before Run (use Spawn + Join)")
	}
	if len(specs) == 0 {
		panic("lynx: LaunchGroup with no specs")
	}
	s.mu.Lock()
	parent := s.byProc[t.Process()]
	s.mu.Unlock()
	if parent == nil {
		panic("lynx: LaunchGroup from a thread of an unknown process")
	}
	// Home-shard placement: on a partitioned run the whole group is born
	// on the launcher's shard — kernel processes, transports, and boot
	// links all allocate from that group's strided id space — so the
	// launch touches no other shard's state and the engine stays
	// parallel. Unpartitioned runs (g = -1) keep the classic global
	// sequences.
	g := parent.group
	env := s.env
	if g >= 0 {
		env = s.shards[g]
	}
	refs := make([]*ProcRef, len(specs))
	for i, spec := range specs {
		refs[i] = s.newProcRef(spec.Name, spec.Main, g)
	}
	s.join(parent, refs[0]) // kernel-level boot wiring works mid-run
	parentTE := parent.boots[len(parent.boots)-1]
	for _, w := range wires {
		if w[0] < 0 || w[0] >= len(specs) || w[1] < 0 || w[1] >= len(specs) || w[0] == w[1] {
			panic(fmt.Sprintf("lynx: LaunchGroup wire %v out of range for %d specs", w, len(specs)))
		}
		s.join(refs[w[0]], refs[w[1]])
	}
	costs := s.runtimeCosts()
	for _, child := range refs {
		childSpec := child
		child.proc = core.NewProcess(env, childSpec.name, child.tr, costs, func(ct *Thread) {
			boot := make([]*End, len(childSpec.boots))
			for i, te := range childSpec.boots {
				boot[i] = ct.AdoptBootEnd(te)
			}
			childSpec.main(ct, boot)
		})
		s.mu.Lock()
		s.byProc[child.proc] = child
		s.mu.Unlock()
	}
	return t.AdoptBootEnd(parentTE), refs
}

// Run executes the system until every process finishes (or an error
// such as deadlock occurs).
func (s *System) Run() error {
	s.materialize()
	err := s.env.Run()
	if err != nil {
		s.fr.Anomaly("run error: " + err.Error())
	}
	return err
}

// RunFor executes the system up to the given virtual-time horizon.
func (s *System) RunFor(d Duration) error {
	s.materialize()
	err := s.env.RunUntil(sim.Time(d))
	if err != nil {
		s.fr.Anomaly("run error: " + err.Error())
	}
	return err
}

// Now reports virtual time.
func (s *System) Now() Time { return s.env.Now() }

// Name returns the process's name.
func (p *ProcRef) Name() string { return p.name }

// Proc returns the underlying core process (after Run has started).
func (p *ProcRef) Proc() *core.Process { return p.proc }

// RuntimeStats returns the run-time package counters (after Run).
func (p *ProcRef) RuntimeStats() *core.Stats {
	if p.proc == nil {
		return &core.Stats{}
	}
	return p.proc.Stats()
}

// CharlotteStats returns Charlotte binding counters (nil elsewhere).
//
// Deprecated: use p.Stats().Charlotte().
func (p *ProcRef) CharlotteStats() *chbind.Stats { return p.Stats().Charlotte() }

// SODAStats returns SODA binding counters (nil elsewhere).
//
// Deprecated: use p.Stats().SODA().
func (p *ProcRef) SODAStats() *sodabind.Stats { return p.Stats().SODA() }

// ChrysalisStats returns Chrysalis binding counters (nil elsewhere).
//
// Deprecated: use p.Stats().Chrysalis().
func (p *ProcRef) ChrysalisStats() *chrbind.Stats { return p.Stats().Chrysalis() }

// DebugState renders the process's run-time state (wedge diagnosis).
func (p *ProcRef) DebugState() string {
	if p.proc == nil {
		return p.name + ": not started"
	}
	return p.proc.DebugState()
}

// Crash kills the process abruptly mid-run (fault injection).
func (p *ProcRef) Crash() {
	if p.proc != nil {
		p.proc.Crash()
	}
}

// CharlotteKernelStats returns kernel counters for a Charlotte system.
//
// Deprecated: use s.Stats().Charlotte().
func (s *System) CharlotteKernelStats() *charlotte.Stats { return s.Stats().Charlotte() }

// SODAKernelStats returns kernel counters for a SODA system.
//
// Deprecated: use s.Stats().SODA().
func (s *System) SODAKernelStats() *soda.Stats { return s.Stats().SODA() }

// ChrysalisKernelStats returns kernel counters for a Chrysalis system.
//
// Deprecated: use s.Stats().Chrysalis().
func (s *System) ChrysalisKernelStats() *chrysalis.Stats { return s.Stats().Chrysalis() }

// Obs returns the active substrate's observability recorder: attach
// exporters (obs.TextExporter, obs.JSONLExporter, obs.ChromeExporter)
// for typed event streams, or read Metrics() for the counter registry.
func (s *System) Obs() *obs.Recorder {
	switch {
	case s.charK != nil:
		return s.charK.Obs()
	case s.sodaK != nil:
		return s.sodaK.Obs()
	case s.chrK != nil:
		return s.chrK.Obs()
	case s.fab != nil:
		return s.fab.Obs()
	}
	return nil
}

// Flight returns the system's flight recorder, or nil when
// Config.Trace.Mode is Off. When a mode is engaged, export sinks must
// attach here — not to Obs() directly, which would bypass sampling:
//
//	sys.Flight().Attach(&obs.JSONLExporter{W: out})
//	sys.Flight().SetDumpWriter(out)
func (s *System) Flight() *flight.Recorder { return s.fr }

// Metrics returns the active substrate's metric registry. It is
// nil-safe end to end: when no recorder exists (a zero-value System) it
// returns the nil registry, whose lookup methods report zero rather
// than panicking.
func (s *System) Metrics() *obs.Metrics {
	if r := s.Obs(); r != nil {
		return r.Metrics()
	}
	return nil
}

// KernelPID returns the process's kernel-level id on the active
// substrate (-1 for Ideal, which has no kernel processes). Per-process
// obs metrics are keyed by this id.
func (p *ProcRef) KernelPID() int {
	switch {
	case p.chTr != nil:
		return p.chTr.KernelProcess().ID()
	case p.sodaTr != nil:
		return int(p.sodaTr.KernelProcess().ID())
	case p.chrTr != nil:
		return p.chrTr.KernelProcess().ID()
	}
	return -1
}
