package lynx

import (
	"fmt"

	"repro/internal/core"
)

// Entries maps operation names to handlers — the LYNX "entry procedure"
// model, where a process declares the remote operations it implements
// and the run-time package dispatches by name. A request whose operation
// has no entry is answered with an error reply carrying the
// "no such operation" marker, which surfaces at the caller as
// ErrNoSuchOperation.
type Entries map[string]func(t *Thread, req *Request) (Msg, error)

// ErrNoSuchOperation is returned by Call/Connect when the server has no
// entry for the requested operation.
var ErrNoSuchOperation = fmt.Errorf("lynx: no such operation")

// errPrefix marks error replies produced by entry dispatch.
const errPrefix = "\x00lynx-error:"

// ServeEntries registers entry-based dispatch on a link end: each
// incoming request runs its entry in a fresh thread and the returned Msg
// becomes the reply. Handler errors (and unknown operations) travel back
// as error replies. (Thread is an alias of the core type, so these are
// free functions rather than methods.)
func ServeEntries(t *Thread, e *End, entries Entries) error {
	return t.Serve(e, func(st *Thread, req *Request) {
		h, ok := entries[req.Op()]
		if !ok {
			st.Reply(req, Msg{Data: []byte(errPrefix + "no such operation: " + req.Op())})
			return
		}
		reply, err := h(st, req)
		if err != nil {
			st.Reply(req, Msg{Data: []byte(errPrefix + err.Error())})
			return
		}
		st.Reply(req, reply)
	})
}

// Call performs a remote operation against an entry-serving peer,
// translating error replies back into Go errors.
func Call(t *Thread, e *End, op string, msg Msg) (*Msg, error) {
	reply, err := t.Connect(e, op, msg)
	if err != nil {
		return nil, err
	}
	if len(reply.Data) >= len(errPrefix) && string(reply.Data[:len(errPrefix)]) == errPrefix {
		text := string(reply.Data[len(errPrefix):])
		if len(text) >= 18 && text[:18] == "no such operation:" {
			return nil, fmt.Errorf("%w:%s", ErrNoSuchOperation, text[18:])
		}
		return nil, fmt.Errorf("lynx: remote error: %s", text)
	}
	return reply, nil
}

// compile-time re-export sanity.
var _ = core.KindRequest
