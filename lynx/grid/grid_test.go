package grid

import (
	"strings"
	"testing"

	"repro/lynx"
	"repro/lynx/sweep"
)

// echoBody is a real whole-system cell replica: one echo RPC pair on
// the cell's substrate with the cell's payload, reporting the round
// trip and the run's metric registry.
func echoBody(c Cell, r sweep.Run) Outcome {
	sub := c.Value("substrate").(lynx.Substrate)
	payload := c.Int("payload")
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: r.Seed, BufCap: payload + 256})
	data := make([]byte, payload)
	var rtt lynx.Duration
	cl := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
		start := th.Now()
		if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
			return
		}
		rtt = lynx.Duration(th.Now() - start)
		th.Destroy(boot[0])
	})
	sv := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{Data: req.Data()})
		})
	})
	sys.Join(cl, sv)
	err := sys.Run()
	return Outcome{
		Values:  map[string]float64{"rtt_ns": float64(rtt)},
		Metrics: sys.Metrics(),
		Err:     err,
	}
}

// Outcome aliases sweep.Outcome for test brevity.
type Outcome = sweep.Outcome

func spec(parallel int) Spec {
	return Spec{
		Name: "echo",
		Axes: []Axis{
			{Name: "substrate", Values: []any{lynx.Chrysalis, lynx.Ideal}},
			{Name: "payload", Values: []any{0, 256, 1024}},
		},
		Replicas: 2,
		Parallel: parallel,
		RootSeed: 7,
		Body:     echoBody,
	}
}

// The PR's acceptance contract: every rendering of the Table — text,
// CSV, JSONL — is byte-identical for Parallel=1 and Parallel=8. Run
// under -race by `make race`.
func TestGridDeterministicAcrossParallelism(t *testing.T) {
	serial := Run(spec(1))
	wide := Run(spec(8))
	if s, w := serial.Render(), wide.Render(); s != w {
		t.Fatalf("text render differs:\n--- serial\n%s\n--- parallel\n%s", s, w)
	}
	if s, w := serial.RenderCSV(), wide.RenderCSV(); s != w {
		t.Fatalf("CSV render differs:\n--- serial\n%s\n--- parallel\n%s", s, w)
	}
	if s, w := serial.RenderJSONL(), wide.RenderJSONL(); s != w {
		t.Fatalf("JSONL render differs:\n--- serial\n%s\n--- parallel\n%s", s, w)
	}
	// Per-replica outcomes, not just aggregates, must agree cell-wise.
	for i := range serial.Cells {
		so, wo := serial.Cells[i].Agg.Outcomes, wide.Cells[i].Agg.Outcomes
		for k := range so {
			if so[k].Values["rtt_ns"] != wo[k].Values["rtt_ns"] {
				t.Fatalf("cell %d replica %d rtt differs across parallelism", i, k)
			}
		}
	}
	if serial.Errs() != 0 {
		t.Fatalf("replica errors: %d", serial.Errs())
	}
}

// Cells enumerate row-major with the last axis fastest, and keys,
// lookups, and accessors agree.
func TestGridEnumerationAndLookup(t *testing.T) {
	tbl := Run(spec(2))
	wantKeys := []string{
		"substrate=chrysalis/payload=0",
		"substrate=chrysalis/payload=256",
		"substrate=chrysalis/payload=1024",
		"substrate=ideal/payload=0",
		"substrate=ideal/payload=256",
		"substrate=ideal/payload=1024",
	}
	if len(tbl.Cells) != len(wantKeys) {
		t.Fatalf("cells = %d, want %d", len(tbl.Cells), len(wantKeys))
	}
	for i, k := range wantKeys {
		c := tbl.Cells[i].Cell
		if c.Key() != k || c.Index != i {
			t.Fatalf("cell %d key/index = %q/%d, want %q/%d", i, c.Key(), c.Index, k, i)
		}
		if tbl.Cell(k) != tbl.Cells[i] {
			t.Fatalf("lookup %q did not return cell %d", k, i)
		}
	}
	if got := tbl.CellAt(lynx.Ideal, 256); got == nil || got.Cell.Key() != "substrate=ideal/payload=256" {
		t.Fatalf("CellAt(Ideal, 256) = %v", got)
	}
	if tbl.CellAt("ideal", 256) == nil {
		t.Fatal("CellAt by rendered value should match")
	}
	if tbl.CellAt(lynx.Ideal) != nil || tbl.Cell("nope") != nil {
		t.Fatal("bad lookups should return nil")
	}
	c := tbl.Cells[1].Cell
	if c.Int("payload") != 256 || c.Str("substrate") != "chrysalis" {
		t.Fatalf("accessors: payload=%d substrate=%q", c.Int("payload"), c.Str("substrate"))
	}
}

// Cell seeds are the documented two-level split: independent of
// replica count and of the other cells.
func TestGridCellSeeds(t *testing.T) {
	var mu sweepSeeds
	Run(Spec{
		Axes:     []Axis{{Name: "x", Values: []any{10, 20}}},
		Replicas: 3,
		Parallel: 1,
		RootSeed: 5,
		Body: func(c Cell, r sweep.Run) Outcome {
			mu.add(c.Index, r.Replica, r.Seed)
			return Outcome{}
		},
	})
	for cell, reps := range mu.seen {
		for rep, s := range reps {
			if want := sweep.CellSeed(5, cell, rep); s != want {
				t.Fatalf("cell %d replica %d seed = %#x, want %#x", cell, rep, s, want)
			}
		}
	}
}

type sweepSeeds struct{ seen map[int]map[int]uint64 }

func (s *sweepSeeds) add(cell, rep int, seed uint64) {
	if s.seen == nil {
		s.seen = map[int]map[int]uint64{}
	}
	if s.seen[cell] == nil {
		s.seen[cell] = map[int]uint64{}
	}
	s.seen[cell][rep] = seed
}

// The table-wide pooled registry files every cell's metrics under its
// key, and rolls up across cells by prefix.
func TestGridMergedKeyedMetrics(t *testing.T) {
	tbl := Run(spec(4))
	m := tbl.Merged()
	perCell := tbl.Cells[0].Agg.Merged.Value("queue_enqueues_total")
	if perCell == 0 {
		t.Fatal("chrysalis cell recorded no dual-queue enqueues")
	}
	if got := m.Value("substrate=chrysalis/payload=0/queue_enqueues_total"); got != perCell {
		t.Fatalf("keyed merge = %d, want %d", got, perCell)
	}
	if got := m.SumPrefix("substrate=chrysalis/"); got == 0 {
		t.Fatal("prefix rollup empty")
	}
}

// A grid with no axes is a single "all" cell; its sweep gets the whole
// worker budget and renders sanely.
func TestGridNoAxes(t *testing.T) {
	tbl := Run(Spec{
		Replicas: 4,
		Parallel: 4,
		Body: func(c Cell, r sweep.Run) Outcome {
			return Outcome{Values: map[string]float64{"v": float64(r.Replica)}}
		},
	})
	if len(tbl.Cells) != 1 || tbl.Cells[0].Cell.Key() != "all" {
		t.Fatalf("no-axes grid: %d cells, key %q", len(tbl.Cells), tbl.Cells[0].Cell.Key())
	}
	if tbl.CellAt() == nil {
		t.Fatal("CellAt() should find the single cell")
	}
	if !strings.Contains(tbl.Render(), "== all\n") {
		t.Fatalf("render missing the all cell:\n%s", tbl.Render())
	}
}

// CSV and JSONL carry the expected headers/shape.
func TestGridRenderFormats(t *testing.T) {
	tbl := Run(spec(2))
	csv := tbl.RenderCSV()
	if !strings.HasPrefix(csv, "cell,substrate,payload,kind,name,n,mean,p50,p95,p99,min,max,ci95\n") {
		t.Fatalf("CSV header wrong:\n%s", csv[:120])
	}
	if !strings.Contains(csv, "substrate=chrysalis/payload=0,chrysalis,0,value,rtt_ns,2,") {
		t.Fatalf("CSV missing value row:\n%s", csv)
	}
	jl := tbl.RenderJSONL()
	lines := strings.Split(strings.TrimSuffix(jl, "\n"), "\n")
	if len(lines) != len(tbl.Cells) {
		t.Fatalf("JSONL lines = %d, want %d", len(lines), len(tbl.Cells))
	}
	if !strings.Contains(lines[0], `"cell":"substrate=chrysalis/payload=0"`) ||
		!strings.Contains(lines[0], `"coords":{"payload":"0","substrate":"chrysalis"}`) {
		t.Fatalf("JSONL first line shape wrong: %s", lines[0])
	}
}
