package grid

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/lynx/sweep"
)

var updateMatrixGolden = flag.Bool("update-golden", false,
	"rewrite the matrix renderer's golden file with the current output")

// matrixTable builds a fully synthetic 3-axis table (no Systems run) so
// the golden bytes depend only on the renderer.
func matrixTable(parallel int) *Table {
	return Run(Spec{
		Name: "pivot",
		Axes: []Axis{
			{Name: "mode", Values: []any{"closed", "open"}},
			{Name: "substrate", Values: []any{"soda", "charlotte"}},
			{Name: "rate", Values: []any{60, 150, 400}},
		},
		Replicas: 2,
		Parallel: parallel,
		RootSeed: 3,
		Body: func(c Cell, r sweep.Run) sweep.Outcome {
			return sweep.Outcome{Values: map[string]float64{
				"sojourn_ms": float64((c.Index+1)*10 + r.Replica),
				"realized":   float64(1000 - c.Index),
			}}
		},
	})
}

// The pivoted matrix renderer against its golden file: rows × columns
// with a section per remaining-axis value, aligned columns, and "-" for
// absent stats. Regenerate with
// `go test ./lynx/grid -run TestRenderMatrixGolden -update-golden`.
func TestRenderMatrixGolden(t *testing.T) {
	tbl := matrixTable(1)
	got := tbl.RenderMatrix("substrate", "rate", "sojourn_ms", "realized", "missing_stat")
	golden := filepath.Join("testdata", "matrix_golden.txt")
	if *updateMatrixGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("matrix drifted from golden %s:\n--- got\n%s\n--- want\n%s", golden, got, want)
	}
}

// The matrix is one more rendering bound by the grid determinism
// contract: byte-identical at any parallelism.
func TestRenderMatrixDeterministicAcrossParallelism(t *testing.T) {
	s := matrixTable(1).RenderMatrix("substrate", "rate", "sojourn_ms")
	w := matrixTable(8).RenderMatrix("substrate", "rate", "sojourn_ms")
	if s != w {
		t.Fatalf("matrix differs across parallelism:\n--- serial\n%s\n--- parallel\n%s", s, w)
	}
}

// Two-axis tables render a single unsectioned matrix; pivot helpers
// behave on edge inputs.
func TestRenderMatrixTwoAxes(t *testing.T) {
	tbl := Run(Spec{
		Name: "flat",
		Axes: []Axis{
			{Name: "substrate", Values: []any{"soda"}},
			{Name: "rate", Values: []any{60, 150}},
		},
		Replicas: 1,
		Parallel: 1,
		Body: func(c Cell, r sweep.Run) sweep.Outcome {
			return sweep.Outcome{Values: map[string]float64{"v": float64(c.Index)}}
		},
	})
	out := tbl.RenderMatrix("substrate", "rate", "v")
	if strings.Contains(out, "== ") && !strings.Contains(out, "== v\n") {
		t.Fatalf("two-axis matrix should have only stat headers:\n%s", out)
	}
	if !strings.Contains(out, `substrate\rate`) {
		t.Fatalf("matrix missing corner header:\n%s", out)
	}
	stats := tbl.MatrixStats()
	if len(stats) == 0 || stats[0] != "v" {
		t.Fatalf("MatrixStats = %v", stats)
	}
	for _, bad := range []func(){
		func() { tbl.RenderMatrix("nope", "rate") },
		func() { tbl.RenderMatrix("rate", "rate") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on bad axes")
				}
			}()
			bad()
		}()
	}
}
