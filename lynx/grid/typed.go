package grid

import "fmt"

// Typed axis and cell accessors. Axis.Values is []any because a grid
// crosses heterogeneous dimensions, but almost every call site knows
// the concrete type of the axis it built; these generic helpers replace
// the bare `c.Value(name).(T)` assertion pattern with construction and
// lookup that keep the type in one place and fail with an error that
// names the axis, the value, and both types.

// AxisOf builds an axis from a typed value slice.
func AxisOf[T any](name string, values ...T) Axis {
	vals := make([]any, len(values))
	for i, v := range values {
		vals[i] = v
	}
	return Axis{Name: name, Values: vals}
}

// As returns the cell's value on the named axis as a T. Unlike
// Cell.Value it never panics: an unknown axis or a value of a
// different type returns a descriptive error.
func As[T any](c Cell, axis string) (T, error) {
	var zero T
	for i, a := range c.axes {
		if a.Name != axis {
			continue
		}
		v, ok := c.coord[i].(T)
		if !ok {
			return zero, fmt.Errorf("grid: axis %q holds %T (%v), not %T",
				axis, c.coord[i], c.coord[i], zero)
		}
		return v, nil
	}
	return zero, fmt.Errorf("grid: cell %s has no axis %q", c.Key(), axis)
}

// MustAs is As for call sites that built the axis themselves, where a
// mismatch is a programming error; it panics with As's error text.
func MustAs[T any](c Cell, axis string) T {
	v, err := As[T](c, axis)
	if err != nil {
		panic(err)
	}
	return v
}

// Has reports whether the cell carries the named axis — the guard for
// optional axes (a fault-scenario axis exists only on faulted sweeps).
func (c Cell) Has(axis string) bool {
	for _, a := range c.axes {
		if a.Name == axis {
			return true
		}
	}
	return false
}
