package grid

import (
	"sync"
	"testing"

	"repro/lynx/sweep"
)

func fpSpec() Spec {
	return Spec{
		Name:     "fp",
		Replicas: 4,
		Axes: []Axis{
			{Name: "substrate", Values: []any{"charlotte", "soda"}},
			{Name: "payload", Values: []any{0, 1024, 4096}},
		},
	}
}

func TestFingerprintAxisOrderIndependent(t *testing.T) {
	a := fpSpec()
	b := fpSpec()
	b.Axes[0], b.Axes[1] = b.Axes[1], b.Axes[0]
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("axis declaration order changed the fingerprint:\n a=%s\n b=%s",
			Fingerprint(a), Fingerprint(b))
	}
}

func TestFingerprintValueOrderSensitive(t *testing.T) {
	a := fpSpec()
	b := fpSpec()
	b.Axes[1].Values = []any{4096, 1024, 0}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("value-list order must change the fingerprint: cell enumeration indexes select seed streams")
	}
}

func TestFingerprintIgnoresLabelsAndSeeds(t *testing.T) {
	a := fpSpec()
	b := fpSpec()
	b.Name = "other label"
	b.Parallel = 7
	b.RootSeed = 99
	b.Body = func(Cell, sweep.Run) sweep.Outcome { return sweep.Outcome{} }
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("Name/Parallel/RootSeed/Body must not affect the fingerprint")
	}
	b.Replicas = 8
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("Replicas must affect the fingerprint")
	}
}

// The golden hash pins cross-machine portability: cache keys derived
// from Fingerprint must mean the same workload on every machine and Go
// version, so any change to the canonical rendering is a breaking
// change to every persisted cache key and must be made deliberately.
func TestFingerprintGolden(t *testing.T) {
	const want = "7e1a08b9adb1e43c59063349b5fc354be14a626593ace332984c826898adc4f8"
	if got := Fingerprint(fpSpec()); got != want {
		t.Fatalf("fingerprint drifted:\n got  %s\n want %s", got, want)
	}
}

func TestFingerprintDefaultReplicas(t *testing.T) {
	a := fpSpec()
	a.Replicas = 0
	b := fpSpec()
	b.Replicas = 1
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("Replicas 0 must fingerprint like the default of 1")
	}
}

func TestCanonicalKeySortsAxes(t *testing.T) {
	tbl := Run(Spec{
		Axes: []Axis{
			{Name: "substrate", Values: []any{"soda"}},
			{Name: "payload", Values: []any{64}},
		},
		Body: func(Cell, sweep.Run) sweep.Outcome { return sweep.Outcome{} },
	})
	c := tbl.Cells[0].Cell
	if got, want := c.Key(), "substrate=soda/payload=64"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	if got, want := c.CanonicalKey(), "payload=64/substrate=soda"; got != want {
		t.Fatalf("CanonicalKey() = %q, want %q", got, want)
	}
	if got, want := (Cell{}).CanonicalKey(), "all"; got != want {
		t.Fatalf("empty CanonicalKey() = %q, want %q", got, want)
	}
}

// TestHookCacheInjection runs a grid cold, replays it with a hook-backed
// cache, and pins that the cached table renders byte-identically — the
// contract lynxd's result cache depends on.
func TestHookCacheInjection(t *testing.T) {
	spec := Spec{
		Name:     "hooked",
		Replicas: 3,
		RootSeed: 7,
		Axes: []Axis{
			{Name: "n", Values: []any{1, 2, 3}},
		},
		Body: func(c Cell, r sweep.Run) sweep.Outcome {
			return sweep.Outcome{Values: map[string]float64{
				"x": float64(c.Int("n")) * float64(r.Seed%1000),
			}}
		},
	}
	cold := Run(spec)

	var mu sync.Mutex
	cache := map[string]*sweep.Aggregate{}
	hits := 0
	spec.Hook = func(c Cell, run func() *sweep.Aggregate) *sweep.Aggregate {
		key := c.CanonicalKey()
		mu.Lock()
		agg, ok := cache[key]
		mu.Unlock()
		if ok {
			hits++
			return agg
		}
		agg = run()
		mu.Lock()
		cache[key] = agg
		mu.Unlock()
		return agg
	}
	spec.Parallel = 1 // serialize so the hit counter needs no locking discipline
	warm1 := Run(spec)
	warm2 := Run(spec)
	if hits != 3 {
		t.Fatalf("second run should hit all 3 cells, got %d hits", hits)
	}
	if cold.RenderJSONL() != warm1.RenderJSONL() || warm1.RenderJSONL() != warm2.RenderJSONL() {
		t.Fatal("hook-cached table renders differ from the cold run")
	}
}

func TestGridProgress(t *testing.T) {
	var mu sync.Mutex
	var calls []int
	spec := Spec{
		Replicas: 2,
		Axes:     []Axis{{Name: "n", Values: []any{1, 2}}},
		Parallel: 1,
		Body: func(Cell, sweep.Run) sweep.Outcome {
			return sweep.Outcome{Values: map[string]float64{"x": 1}}
		},
		Progress: func(done, total int) {
			if total != 4 {
				t.Errorf("total = %d, want 4", total)
			}
			mu.Lock()
			calls = append(calls, done)
			mu.Unlock()
		},
	}
	Run(spec)
	if len(calls) != 4 || calls[len(calls)-1] != 4 {
		t.Fatalf("progress calls = %v, want 1..4", calls)
	}

	// A hook that satisfies cells without running them still reports
	// their replicas.
	calls = nil
	spec.Hook = func(c Cell, run func() *sweep.Aggregate) *sweep.Aggregate {
		return &sweep.Aggregate{Replicas: 2}
	}
	Run(spec)
	if len(calls) != 2 || calls[len(calls)-1] != 4 {
		t.Fatalf("hooked progress calls = %v, want [2 4]", calls)
	}
}
