// Package grid runs keyed configuration-grid sweeps: a Spec declares
// named axes (substrate, payload bytes, node count — any value list),
// the runner enumerates their cross product, fans each cell's replicas
// through the lynx/sweep harness with cell-indexed stream-split seeds,
// and the results land in a keyed Table with text, CSV, and JSONL
// renderers.
//
// The determinism contract extends sweep's: cell c's replica k always
// runs with sweep.CellSeed(RootSeed, c, k) — a two-level stateless
// SplitMix64 split — and both cells and replicas are assembled in
// enumeration order, so the Table (and every rendering of it) is
// byte-identical for Parallel=1 and Parallel=N. Parallelism changes
// wall-clock time and nothing else.
//
// Typical use:
//
//	t := grid.Run(grid.Spec{
//	    Name: "payload sweep",
//	    Axes: []grid.Axis{
//	        {Name: "substrate", Values: []any{lynx.Charlotte, lynx.SODA}},
//	        {Name: "payload", Values: []any{0, 1024, 4096}},
//	    },
//	    Replicas: 8,
//	    Body: func(c grid.Cell, r sweep.Run) sweep.Outcome {
//	        sub := c.Value("substrate").(lynx.Substrate)
//	        n := c.Int("payload")
//	        ... build a lynx.System with Seed: r.Seed, run it ...
//	    },
//	})
//	st := t.CellAt(lynx.SODA, 1024).Agg.Values["rtt_ms"]
package grid

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/lynx/sweep"
)

// Axis is one named dimension of a configuration grid. Values may be
// any type; cell keys use their fmt.Sprint rendering (so types with a
// String method, like lynx.Substrate, key naturally).
type Axis struct {
	Name   string
	Values []any
}

// Spec declares a grid: the axes whose cross product defines the
// cells, the replication per cell, and the replica body. The zero
// values of Replicas/Parallel/RootSeed default exactly as in
// sweep.Options (1 replica, GOMAXPROCS workers, root seed 1).
type Spec struct {
	// Name labels the grid in renderings.
	Name string
	// Axes are the grid dimensions; the cross product is enumerated
	// row-major with the LAST axis varying fastest. No axes means one
	// cell (the empty configuration).
	Axes []Axis
	// Replicas is R, the independent runs per cell.
	Replicas int
	// Parallel is the worker goroutine count fanning cells out.
	Parallel int
	// RootSeed seeds the whole grid; cell c's replica k runs with
	// sweep.CellSeed(RootSeed, c, k).
	RootSeed uint64
	// Body runs one replica of one cell. It must derive all randomness
	// from r.Seed and be safe to call concurrently (each call should
	// build its own lynx.System; see the lynx concurrency contract).
	Body func(c Cell, r sweep.Run) sweep.Outcome

	// Hook, when non-nil, wraps each cell's execution — the result-cache
	// injection point. run executes the cell's replica sweep and returns
	// its aggregate; the hook may call it, or return a previously cached
	// aggregate for an identical (cell, seeds, body) instead. Returning
	// a cached aggregate MUST be equivalent to re-running the cell (same
	// seeds, same body) or the determinism contract breaks; the returned
	// aggregate is stored in the Table and must not be mutated after.
	// Hooks run concurrently when Parallel > 1.
	Hook func(c Cell, run func() *sweep.Aggregate) *sweep.Aggregate

	// Progress, when non-nil, is called after each completed replica
	// with the number done so far and the grid total
	// (cells × replicas). Calls may arrive concurrently from worker
	// goroutines and slightly out of order; done is monotonic per call
	// site. Cells satisfied by Hook without running report their whole
	// replica count at once. Progress must not mutate grid state.
	Progress func(done, total int)

	// Trace passes through to every cell's sweep (sweep.Options.Trace):
	// the flight-recorder configuration bodies may honor. Recording is
	// pure observation, so Trace is no part of the grid's identity —
	// spec canonicalization, fingerprints, and cell caches all exclude
	// it, exactly like Parallel.
	Trace *flight.Config
}

// Cell identifies one point of the cross product: its enumeration
// index and one value per axis.
type Cell struct {
	// Index is the cell's row-major enumeration index, which also
	// selects its seed stream.
	Index int
	axes  []Axis
	coord []any
}

// Key renders the cell as "name=value/name=value" in axis order — the
// Table lookup key. The empty configuration (no axes) keys as "all".
func (c Cell) Key() string {
	if len(c.axes) == 0 {
		return "all"
	}
	parts := make([]string, len(c.axes))
	for i, a := range c.axes {
		parts[i] = fmt.Sprintf("%s=%v", a.Name, c.coord[i])
	}
	return strings.Join(parts, "/")
}

// Value returns the cell's value on the named axis; it panics on an
// unknown axis name (a programming error in the grid body).
func (c Cell) Value(axis string) any {
	for i, a := range c.axes {
		if a.Name == axis {
			return c.coord[i]
		}
	}
	panic(fmt.Sprintf("grid: cell has no axis %q", axis))
}

// Int returns the named axis value as an int, panicking if it is not
// one — the convenience accessor for payload/node/worker-count axes.
func (c Cell) Int(axis string) int {
	v := c.Value(axis)
	n, ok := v.(int)
	if !ok {
		panic(fmt.Sprintf("grid: axis %q value %v is %T, not int", axis, v, v))
	}
	return n
}

// Str returns the named axis value's fmt.Sprint rendering.
func (c Cell) Str(axis string) string {
	return fmt.Sprint(c.Value(axis))
}

// CellResult pairs a cell with its replica aggregate: per-metric Stats
// and the pooled obs registry, exactly as sweep computes them.
type CellResult struct {
	Cell Cell
	Agg  *sweep.Aggregate
}

// Table is the grid's keyed result: cells in enumeration order plus a
// key index.
type Table struct {
	Name     string
	Axes     []Axis
	Replicas int
	RootSeed uint64
	Cells    []*CellResult
	byKey    map[string]*CellResult
}

// Run enumerates the Spec's cross product and executes every cell,
// fanning cells across Parallel workers; each cell's replicas run
// through sweep.Sweep seeded by sweep.CellSeed. The returned Table is
// byte-identical for any Parallel value.
func Run(s Spec) *Table {
	if s.Body == nil {
		panic("grid: Spec.Body is nil")
	}
	replicas := s.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	parallel := s.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	root := s.RootSeed
	if root == 0 {
		root = 1
	}
	cells := enumerate(s.Axes)
	t := &Table{
		Name:     s.Name,
		Axes:     s.Axes,
		Replicas: replicas,
		RootSeed: root,
		Cells:    make([]*CellResult, len(cells)),
		byKey:    make(map[string]*CellResult, len(cells)),
	}
	// Parallelism placement: with several cells the pool spans cells
	// (each cell's sweep runs serially inside one worker); a single-cell
	// grid hands the whole worker budget to its sweep instead. Either
	// way every (cell, replica) seed is scheduling-independent.
	cellParallel := 1
	if len(cells) == 1 {
		cellParallel = parallel
	}
	total := len(cells) * replicas
	var done atomic.Int64
	runCell := func(i int) *CellResult {
		c := cells[i]
		var progress func(completed, n int)
		if s.Progress != nil {
			progress = func(completed, n int) {
				s.Progress(int(done.Add(1)), total)
			}
		}
		run := func() *sweep.Aggregate {
			return sweep.Sweep(sweep.Options{
				Replicas: replicas,
				Parallel: cellParallel,
				RootSeed: root,
				Seeds:    func(k int) uint64 { return sweep.CellSeed(root, c.Index, k) },
				Progress: progress,
				Trace:    s.Trace,
			}, func(r sweep.Run) sweep.Outcome { return s.Body(c, r) })
		}
		var agg *sweep.Aggregate
		if s.Hook != nil {
			ran := false
			agg = s.Hook(c, func() *sweep.Aggregate { ran = true; return run() })
			if !ran && s.Progress != nil {
				// Cache hit: the cell's replicas complete all at once.
				s.Progress(int(done.Add(int64(replicas))), total)
			}
		} else {
			agg = run()
		}
		return &CellResult{Cell: c, Agg: agg}
	}
	workers := parallel
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i := range cells {
			t.Cells[i] = runCell(i)
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					t.Cells[i] = runCell(i)
				}
			}()
		}
		for i := range cells {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, cr := range t.Cells {
		t.byKey[cr.Cell.Key()] = cr
	}
	return t
}

// enumerate builds the row-major cross product of the axes (last axis
// fastest), assigning enumeration indexes in order.
func enumerate(axes []Axis) []Cell {
	total := 1
	for _, a := range axes {
		total *= len(a.Values)
	}
	cells := make([]Cell, 0, total)
	coord := make([]int, len(axes))
	for i := 0; i < total; i++ {
		vals := make([]any, len(axes))
		for d, a := range axes {
			vals[d] = a.Values[coord[d]]
		}
		cells = append(cells, Cell{Index: i, axes: axes, coord: vals})
		for d := len(axes) - 1; d >= 0; d-- {
			coord[d]++
			if coord[d] < len(axes[d].Values) {
				break
			}
			coord[d] = 0
		}
	}
	return cells
}

// Cell looks a cell up by its Key; nil if unknown.
func (t *Table) Cell(key string) *CellResult {
	return t.byKey[key]
}

// CellAt looks a cell up by coordinate values in axis order (compared
// by fmt.Sprint rendering, so lynx.Charlotte and "charlotte" both
// match a substrate axis); nil if no such cell.
func (t *Table) CellAt(coords ...any) *CellResult {
	if len(coords) != len(t.Axes) {
		return nil
	}
	parts := make([]string, len(coords))
	for i, v := range coords {
		parts[i] = fmt.Sprintf("%s=%v", t.Axes[i].Name, v)
	}
	key := strings.Join(parts, "/")
	if len(parts) == 0 {
		key = "all"
	}
	return t.byKey[key]
}

// Errs counts failed replicas across all cells.
func (t *Table) Errs() int {
	n := 0
	for _, cr := range t.Cells {
		n += len(cr.Agg.Errs)
	}
	return n
}

// Merged pools every cell's merged registry into one table-wide
// registry, each cell's instruments filed under its key as a name
// prefix ("substrate=soda/payload=1024/kernel_messages_total"), so
// cells stay distinguishable and SumPrefix gives cross-cell rollups.
func (t *Table) Merged() *obs.Metrics {
	m := obs.NewMetrics()
	for _, cr := range t.Cells {
		m.MergePrefixed(cr.Cell.Key(), cr.Agg.Merged)
	}
	return m
}

// axisNames renders the axis names for headers.
func (t *Table) axisNames() string {
	names := make([]string, len(t.Axes))
	for i, a := range t.Axes {
		names[i] = a.Name
	}
	return strings.Join(names, " ")
}

// Render writes the table as a deterministic text report: a grid
// header, then one block per cell in enumeration order with every
// value and metric stat sorted by name.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid: %s axes=[%s] cells=%d R=%d rootseed=%d errors=%d\n",
		t.Name, t.axisNames(), len(t.Cells), t.Replicas, t.RootSeed, t.Errs())
	for _, cr := range t.Cells {
		fmt.Fprintf(&b, "== %s\n", cr.Cell.Key())
		writeStats(&b, "value", cr.Agg.Values)
		writeStats(&b, "metric", cr.Agg.Metrics)
	}
	return b.String()
}

// writeStats renders one stat map sorted by key (the sweep report
// line format).
func writeStats(b *strings.Builder, kind string, stats map[string]sweep.Stat) {
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(b, "  %s %-40s %s\n", kind, n, stats[n])
	}
}

// RenderCSV writes the table as CSV: one row per (cell, kind, stat),
// with one column per axis ahead of the stat columns. CI95 is "n/a"
// for singleton series, matching the text renderer.
func (t *Table) RenderCSV() string {
	var b strings.Builder
	b.WriteString("cell")
	for _, a := range t.Axes {
		b.WriteByte(',')
		b.WriteString(a.Name)
	}
	b.WriteString(",kind,name,n,mean,p50,p95,p99,min,max,ci95\n")
	for _, cr := range t.Cells {
		prefix := cr.Cell.Key()
		for i := range t.Axes {
			prefix += "," + fmt.Sprint(cr.Cell.coord[i])
		}
		writeCSVStats(&b, prefix, "value", cr.Agg.Values)
		writeCSVStats(&b, prefix, "metric", cr.Agg.Metrics)
	}
	return b.String()
}

// writeCSVStats renders one stat map as CSV rows sorted by name.
func writeCSVStats(b *strings.Builder, prefix, kind string, stats map[string]sweep.Stat) {
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := stats[n]
		ci := "n/a"
		if s.N >= 2 {
			ci = fmt.Sprintf("%g", s.CI95)
		}
		fmt.Fprintf(b, "%s,%s,%s,%d,%g,%g,%g,%g,%g,%g,%s\n",
			prefix, kind, n, s.N, s.Mean, s.P50, s.P95, s.P99, s.Min, s.Max, ci)
	}
}

// jsonCell is the JSONL record schema: one object per cell.
type jsonCell struct {
	Cell     string                `json:"cell"`
	Coords   map[string]string     `json:"coords,omitempty"`
	Replicas int                   `json:"replicas"`
	Errors   int                   `json:"errors"`
	Values   map[string]sweep.Stat `json:"values,omitempty"`
	Metrics  map[string]sweep.Stat `json:"metrics,omitempty"`
}

// RenderJSONL writes one JSON object per cell, in enumeration order.
// encoding/json sorts map keys, so the stream is byte-deterministic
// for a deterministic Table.
func (t *Table) RenderJSONL() string {
	var b strings.Builder
	for _, cr := range t.Cells {
		coords := make(map[string]string, len(t.Axes))
		for i, a := range t.Axes {
			coords[a.Name] = fmt.Sprint(cr.Cell.coord[i])
		}
		rec := jsonCell{
			Cell:     cr.Cell.Key(),
			Coords:   coords,
			Replicas: t.Replicas,
			Errors:   len(cr.Agg.Errs),
			Values:   cr.Agg.Values,
			Metrics:  cr.Agg.Metrics,
		}
		line, err := json.Marshal(rec)
		if err != nil {
			panic(fmt.Sprintf("grid: marshal cell %s: %v", rec.Cell, err))
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}
