package grid

import (
	"fmt"
	"sort"
	"strings"
)

// RenderMatrix pivots the table on two axes: one text matrix per
// requested stat, with a row per rowAxis value and a column per colAxis
// value, each cell showing that stat's mean. Stats are looked up first
// in the cell's Values, then its Metrics; cells without the stat (or
// absent from the grid) render as "-". When the table has axes beyond
// the two pivots, one matrix section is emitted per combination of the
// remaining axes, in enumeration order.
//
// Like the other renderers, the output is byte-deterministic for a
// deterministic Table. Unknown or identical axis names panic (a
// programming error, as in Cell.Value).
func (t *Table) RenderMatrix(rowAxis, colAxis string, stats ...string) string {
	ri, ci := t.axisIndex(rowAxis), t.axisIndex(colAxis)
	if ri == ci {
		panic(fmt.Sprintf("grid: RenderMatrix row and column axes are both %q", rowAxis))
	}
	var rest []Axis
	for i, a := range t.Axes {
		if i != ri && i != ci {
			rest = append(rest, a)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "grid: %s matrix rows=%s cols=%s R=%d rootseed=%d errors=%d\n",
		t.Name, rowAxis, colAxis, t.Replicas, t.RootSeed, t.Errs())
	for _, restCell := range enumerate(rest) {
		section := restCell.Key()
		for _, stat := range stats {
			if len(rest) > 0 {
				fmt.Fprintf(&b, "== %s %s\n", section, stat)
			} else {
				fmt.Fprintf(&b, "== %s\n", stat)
			}
			t.writeMatrix(&b, ri, ci, restCell, stat)
		}
	}
	return b.String()
}

// axisIndex resolves an axis name, panicking on an unknown one.
func (t *Table) axisIndex(name string) int {
	for i, a := range t.Axes {
		if a.Name == name {
			return i
		}
	}
	panic(fmt.Sprintf("grid: table has no axis %q", name))
}

// writeMatrix emits one aligned stat matrix for a fixed setting of the
// non-pivot axes.
func (t *Table) writeMatrix(b *strings.Builder, ri, ci int, rest Cell, stat string) {
	rows, cols := t.Axes[ri], t.Axes[ci]
	// Assemble all cell texts first so every column can be width-aligned.
	grid := make([][]string, len(rows.Values)+1)
	grid[0] = append([]string{rows.Name + `\` + cols.Name}, renderVals(cols.Values)...)
	for r, rv := range rows.Values {
		line := []string{fmt.Sprint(rv)}
		for _, cv := range cols.Values {
			line = append(line, t.matrixCell(ri, ci, rv, cv, rest, stat))
		}
		grid[r+1] = line
	}
	widths := make([]int, len(grid[0]))
	for _, line := range grid {
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, line := range grid {
		for i, cell := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
}

// matrixCell renders one pivot cell's stat mean, or "-" when the cell
// or stat is missing.
func (t *Table) matrixCell(ri, ci int, rv, cv any, rest Cell, stat string) string {
	coords := make([]string, len(t.Axes))
	restIdx := 0
	for i, a := range t.Axes {
		var v any
		switch i {
		case ri:
			v = rv
		case ci:
			v = cv
		default:
			v = rest.coord[restIdx]
			restIdx++
		}
		coords[i] = fmt.Sprintf("%s=%v", a.Name, v)
	}
	key := strings.Join(coords, "/")
	if len(coords) == 0 {
		key = "all"
	}
	cr := t.byKey[key]
	if cr == nil {
		return "-"
	}
	if s, ok := cr.Agg.Values[stat]; ok {
		return fmt.Sprintf("%.3f", s.Mean)
	}
	if s, ok := cr.Agg.Metrics[stat]; ok {
		return fmt.Sprintf("%.3f", s.Mean)
	}
	return "-"
}

// renderVals renders axis values for the matrix header row.
func renderVals(vals []any) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = fmt.Sprint(v)
	}
	return out
}

// MatrixStats lists every stat name present in any cell (Values and
// Metrics pooled), sorted — a convenience for callers choosing what to
// pivot.
func (t *Table) MatrixStats() []string {
	seen := map[string]bool{}
	for _, cr := range t.Cells {
		for n := range cr.Agg.Values {
			seen[n] = true
		}
		for n := range cr.Agg.Metrics {
			seen[n] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
