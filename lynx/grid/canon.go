package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Canonical returns a copy of s with its axes sorted by name (values
// kept in declared order). Two Specs that differ only in axis
// declaration order have the same canonical form, which is what makes
// Fingerprint axis-order independent. Note that canonicalizing changes
// the cell enumeration (and therefore the per-cell seed streams), so
// Canonical is a keying aid, not a transparent pre-pass for Run: run
// the spec as declared, key it canonically.
func Canonical(s Spec) Spec {
	axes := make([]Axis, len(s.Axes))
	copy(axes, s.Axes)
	sort.SliceStable(axes, func(i, j int) bool { return axes[i].Name < axes[j].Name })
	s.Axes = axes
	return s
}

// Fingerprint hashes the workload shape of a Spec: the canonical
// (name-sorted) axes with their value lists in declared order, plus the
// replica count. Value-list order matters — cell enumeration indexes
// select seed streams, so reordering values genuinely changes results —
// while axis declaration order, Name (a display label), Parallel (never
// affects results), RootSeed (keyed separately by cache layers), and
// the Body/Hook functions are all excluded. The hash is a SHA-256 hex
// string computed from fmt.Sprint renderings, so it is stable across
// machines and Go versions for value types with deterministic
// formatting (ints, floats, strings, fmt.Stringers).
func Fingerprint(s Spec) string {
	c := Canonical(s)
	h := sha256.New()
	fmt.Fprintf(h, "grid.Spec|replicas=%d", normReplicas(s.Replicas))
	for _, a := range c.Axes {
		fmt.Fprintf(h, "|axis=%s:[", a.Name)
		for i, v := range a.Values {
			if i > 0 {
				h.Write([]byte{','})
			}
			fmt.Fprint(h, v)
		}
		h.Write([]byte{']'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// normReplicas mirrors Run's default so Fingerprint agrees for
// Replicas 0 and 1.
func normReplicas(r int) int {
	if r <= 0 {
		return 1
	}
	return r
}

// CanonicalKey renders the cell as "name=value/..." with the axes
// sorted by name — the axis-order-independent sibling of Key. Cells of
// two grids that declare the same axes in different orders share
// CanonicalKeys, which is what result caches key cells by.
func (c Cell) CanonicalKey() string {
	if len(c.axes) == 0 {
		return "all"
	}
	parts := make([]string, len(c.axes))
	for i, a := range c.axes {
		parts[i] = fmt.Sprintf("%s=%v", a.Name, c.coord[i])
	}
	sort.Strings(parts)
	return strings.Join(parts, "/")
}
