package lynx_test

import (
	"fmt"
	"testing"

	"repro/lynx"
	"repro/lynx/fault"
)

// TestEarlyReplyUnderDrop pins a run-time package defect found by fault
// injection: on SODA the completion frame that confirms a request's
// delivery can be dropped and retried while the reply proceeds, so the
// reply reaches the requester before its send block settles. The core
// used to discard such a reply as unwanted and the Connect never woke.
// A heavy point-to-point drop over many seeds keeps that interleaving
// in reach; every run must still drain with all echoes answered.
func TestEarlyReplyUnderDrop(t *testing.T) {
	plan := fault.MustParse("drop(*->*,0.3)")
	for seed := uint64(1); seed <= 12; seed++ {
		sys := lynx.NewSystem(lynx.Config{Substrate: lynx.SODA, Seed: seed, Faults: plan})
		data := make([]byte, 64)
		done := 0
		client := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
			for i := 0; i < 6; i++ {
				if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: data}); err != nil {
					t.Errorf("seed %d: echo %d: %v", seed, i, err)
					break
				}
				done++
			}
			th.Destroy(boot[0])
		})
		server := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		})
		sys.Join(client, server)
		if err := sys.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if done != 6 {
			t.Errorf("seed %d: only %d of 6 echoes completed", seed, done)
		}
	}
}

// TestCrashDuringLinkMove: the E13 A-B-C topology with the middleman
// crashed at offsets straddling its 100ms link move. The kernels must
// either complete A's later call (the move won) or fail it with a
// diagnosable error (the crash won) — never wedge — and the outcome
// must be a pure function of (substrate, offset, seed).
func TestCrashDuringLinkMove(t *testing.T) {
	offsets := []lynx.Duration{90 * lynx.Millisecond, 100 * lynx.Millisecond, 110 * lynx.Millisecond}
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA} {
		for _, off := range offsets {
			for seed := uint64(1); seed <= 3; seed++ {
				a := crashMoveOutcome(t, sub, off, seed)
				b := crashMoveOutcome(t, sub, off, seed)
				if a != b {
					t.Errorf("%v crash@%v seed %d: same seed diverged:\n  %s\n  %s", sub, off, seed, a, b)
				}
			}
		}
	}
}

// crashMoveOutcome runs one episode and folds what happened into a
// comparable string. RunFor bounds the episode in virtual time, so even
// a runaway timer chain terminates the test.
func crashMoveOutcome(t *testing.T, sub lynx.Substrate, crashAt lynx.Duration, seed uint64) string {
	t.Helper()
	plan := &fault.Plan{Events: []fault.Event{fault.Crash{Proc: "B", At: crashAt}}}
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: seed, Faults: plan})
	var firstErr, secondErr error
	pa := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		e := boot[0]
		if _, firstErr = th.Connect(e, "one", lynx.Msg{}); firstErr != nil {
			return
		}
		th.Sleep(400 * lynx.Millisecond)
		_, secondErr = th.Connect(e, "two", lynx.Msg{})
		th.Destroy(e)
	})
	pb := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		e, toC := boot[0], boot[1]
		req, err := th.Receive(e)
		if err != nil {
			return
		}
		th.Reply(req, lynx.Msg{})
		th.Sleep(100 * lynx.Millisecond)
		th.Connect(toC, "take", lynx.Msg{Links: []*lynx.End{e}})
		th.Destroy(toC)
	})
	pc := sys.Spawn("C", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			return
		}
		moved := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		th.Serve(moved, func(st *lynx.Thread, r2 *lynx.Request) {
			st.Reply(r2, lynx.Msg{})
		})
	})
	sys.Join(pa, pb)
	sys.Join(pb, pc)
	if err := sys.RunFor(10 * lynx.Second); err != nil {
		t.Fatalf("%v crash@%v seed %d: %v", sub, crashAt, seed, err)
	}
	if firstErr != nil {
		t.Errorf("%v crash@%v seed %d: pre-crash call failed: %v", sub, crashAt, seed, firstErr)
	}
	if pa == nil || pc == nil {
		t.Fatal("spawn failed")
	}
	return fmt.Sprintf("second=%v", secondErr)
}
