package lynx_test

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/lynx"
)

// The stress suite runs randomized multi-process workloads — random
// mixtures of remote operations, link creation, link movement, link
// destruction and thread forks — on every substrate, and checks global
// invariants:
//
//   - the run terminates (no protocol deadlock, no lost wakeup);
//   - identical seeds produce identical runs (determinism);
//   - every link end moved out of a process is adopted somewhere
//     (conservation, via runtime stats);
//   - no operation returns an impossible error.
//
// The workload is constructed so that every blocking operation can
// terminate: every process serves all ends it owns at all times (the
// universal handler also serves adopted ends before replying), and at
// the end every process destroys what it owns, which unblocks any peer
// still waiting.

// stressResult aggregates one run's observable outcomes.
type stressResult struct {
	finalTime  lynx.Time
	ops        int64
	opErrors   int64
	moves      int64
	destroys   int64
	enclSent   int64
	enclRecv   int64
	runtimeErr error
}

// stressTracer, when set, observes stress runs (debugging aid).
var stressTracer sim.Tracer

// runStress executes one randomized workload.
func runStress(sub lynx.Substrate, seed uint64, nProcs, opsPerProc int) stressResult {
	var res stressResult
	sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: seed})
	if stressTracer != nil {
		sys.Env().SetTracer(stressTracer)
	}
	rng := sim.NewRand(seed * 7777)

	refs := make([]*lynx.ProcRef, nProcs)
	for i := 0; i < nProcs; i++ {
		i := i
		refs[i] = sys.Spawn(fmt.Sprint("p", i), func(t *lynx.Thread, boot []*lynx.End) {
			owned := append([]*lynx.End{}, boot...)
			// The universal server: echo every request, adopt and serve
			// every moved end.
			var serveAll func(ends []*lynx.End)
			serveAll = func(ends []*lynx.End) {
				for _, e := range ends {
					t.Process().ServeEnd(e, func(st *lynx.Thread, req *lynx.Request) {
						serveAll(req.Links())
						owned = append(owned, req.Links()...)
						st.Reply(req, lynx.Msg{Data: req.Data()})
					})
				}
			}
			serveAll(boot)

			pickLive := func() *lynx.End {
				// Compact dead/moved-away ends opportunistically.
				live := owned[:0]
				for _, e := range owned {
					if !e.Dead() {
						live = append(live, e)
					}
				}
				owned = live
				if len(owned) == 0 {
					return nil
				}
				return owned[rng.Intn(len(owned))]
			}

			for op := 0; op < opsPerProc; op++ {
				res.ops++
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // remote operation
					e := pickLive()
					if e == nil {
						continue
					}
					payload := make([]byte, rng.Intn(200))
					if _, err := t.Connect(e, "echo", lynx.Msg{Data: payload}); err != nil {
						res.opErrors++
					}
				case 4, 5: // create a link and move one end over a random live end
					carrier := pickLive()
					if carrier == nil {
						continue
					}
					mine, theirs, err := t.NewLink()
					if err != nil {
						res.opErrors++
						continue
					}
					serveAll([]*lynx.End{mine})
					owned = append(owned, mine)
					if _, err := t.Connect(carrier, "take", lynx.Msg{Links: []*lynx.End{theirs}}); err != nil {
						res.opErrors++
						// The move failed; we still own theirs. Serve it
						// so it cannot wedge anyone, then keep it.
						if !theirs.Dead() {
							serveAll([]*lynx.End{theirs})
							owned = append(owned, theirs)
						}
					} else {
						res.moves++
					}
				case 6: // destroy a random owned end (not a boot end early on)
					if len(owned) > len(boot) {
						e := owned[len(boot)+rng.Intn(len(owned)-len(boot))]
						if !e.Dead() {
							t.Destroy(e)
							res.destroys++
						}
					}
				case 7: // fork a thread that does one echo
					e := pickLive()
					if e == nil {
						continue
					}
					t.Fork("worker", func(w *lynx.Thread) {
						if _, err := w.Connect(e, "echo", lynx.Msg{Data: []byte{1}}); err != nil {
							res.opErrors++
						}
					})
				case 8: // brief sleep: lets traffic interleave
					t.Sleep(lynx.Duration(rng.Intn(20)) * lynx.Millisecond)
				case 9: // open/close the request queue on a random end
					e := pickLive()
					if e == nil {
						continue
					}
					t.OpenRequests(e)
					t.Sleep(lynx.Duration(rng.Intn(5)) * lynx.Millisecond)
					t.CloseRequests(e)
				}
			}
			// Drain a little, then tear down everything we own.
			t.Sleep(50 * lynx.Millisecond)
			for _, e := range owned {
				if !e.Dead() {
					t.Destroy(e)
				}
			}
		})
	}
	// Boot topology: a ring plus chords, so moves have somewhere to go.
	for i := 0; i < nProcs; i++ {
		sys.Join(refs[i], refs[(i+1)%nProcs])
	}
	for i := 0; i+2 < nProcs; i += 2 {
		sys.Join(refs[i], refs[i+2])
	}

	res.runtimeErr = sys.RunFor(120 * lynx.Second)
	res.finalTime = sys.Now()
	if res.runtimeErr != nil || res.finalTime >= lynx.Time(115*lynx.Second) {
		for _, p := range refs {
			fmt.Print(p.DebugState())
		}
	}
	for _, p := range refs {
		st := p.RuntimeStats()
		res.enclSent += st.EnclosuresSent
		res.enclRecv += st.EnclosuresRecv
	}
	return res
}

func TestStressAllSubstrates(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis, lynx.Ideal} {
		sub := sub
		t.Run(sub.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				res := runStress(sub, seed, 5, 25)
				if res.runtimeErr != nil {
					t.Fatalf("seed %d: %v", seed, res.runtimeErr)
				}
				if res.finalTime >= lynx.Time(120*lynx.Second) {
					t.Fatalf("seed %d: hit the horizon (stuck workload)", seed)
				}
				if res.ops == 0 {
					t.Fatalf("seed %d: no operations ran", seed)
				}
				t.Logf("seed %d: ops=%d errs=%d moves=%d destroys=%d encl=%d/%d t=%v",
					seed, res.ops, res.opErrors, res.moves, res.destroys,
					res.enclSent, res.enclRecv, res.finalTime)
			}
		})
	}
}

func TestStressDeterministic(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis} {
		a := runStress(sub, 99, 4, 15)
		b := runStress(sub, 99, 4, 15)
		if a.finalTime != b.finalTime || a.ops != b.ops || a.opErrors != b.opErrors ||
			a.moves != b.moves || a.enclSent != b.enclSent {
			t.Fatalf("%v: nondeterministic: %+v vs %+v", sub, a, b)
		}
	}
}

func TestStressLargerFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A bigger run on the fastest substrates.
	for _, sub := range []lynx.Substrate{lynx.Chrysalis, lynx.Ideal} {
		res := runStress(sub, 7, 10, 60)
		if res.runtimeErr != nil {
			t.Fatalf("%v: %v", sub, res.runtimeErr)
		}
		if res.finalTime >= lynx.Time(120*lynx.Second) {
			t.Fatalf("%v: hit the horizon", sub)
		}
		t.Logf("%v: ops=%d errs=%d moves=%d t=%v", sub, res.ops, res.opErrors, res.moves, res.finalTime)
	}
}

// TestCrashSweep crashes the server at a sweep of instants through the
// protocol exchange and requires that the client always terminates with
// a clean outcome (reply or exception) — no wedged state at any crash
// point, on any substrate.
func TestCrashSweep(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis} {
		sub := sub
		t.Run(sub.String(), func(t *testing.T) {
			// Sweep crash times across the whole RTT (plus margin).
			horizonMS := 80
			stepMS := 4
			if sub == lynx.Chrysalis {
				horizonMS, stepMS = 8, 1
			}
			for ms := 0; ms <= horizonMS; ms += stepMS {
				crashAt := lynx.Duration(ms) * lynx.Millisecond
				sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: uint64(ms) + 1})
				outcome := "none"
				c := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
					_, mine, err := th.NewLink()
					_ = mine
					if err != nil {
						return
					}
					if _, err := th.Connect(boot[0], "op", lynx.Msg{Data: []byte("x")}); err != nil {
						outcome = "error"
					} else {
						outcome = "reply"
					}
					th.Destroy(boot[0])
				})
				s := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
					th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
						st.Reply(req, lynx.Msg{})
					})
					th.Sleep(crashAt)
					th.Process().Crash()
					th.Sleep(lynx.Millisecond)
				})
				sys.Join(c, s)
				if err := sys.RunFor(30 * lynx.Second); err != nil {
					t.Fatalf("crash at %v: %v", crashAt, err)
				}
				if sys.Now() >= lynx.Time(30*lynx.Second) {
					t.Fatalf("crash at %v: client wedged", crashAt)
				}
				if outcome == "none" {
					t.Fatalf("crash at %v: client never resolved", crashAt)
				}
				_ = s
			}
		})
	}
}
