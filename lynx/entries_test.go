package lynx_test

import (
	"errors"
	"strings"
	"testing"

	"repro/lynx"
	"repro/lynx/codec"
)

func TestServeEntriesDispatch(t *testing.T) {
	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Chrysalis, Seed: 1})
	var sum int64
	var unknownErr, failErr error
	c := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
		e := boot[0]
		reply, err := lynx.Call(th, e, "add", lynx.Msg{Data: codec.MustMarshal(int64(19), int64(23))})
		if err != nil {
			t.Errorf("add: %v", err)
			return
		}
		if err := codec.Unmarshal(reply.Data, &sum); err != nil {
			t.Errorf("decode: %v", err)
		}
		_, unknownErr = lynx.Call(th, e, "subtract", lynx.Msg{})
		_, failErr = lynx.Call(th, e, "fail", lynx.Msg{})
		th.Destroy(e)
	})
	s := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
		lynx.ServeEntries(th, boot[0], lynx.Entries{
			"add": func(st *lynx.Thread, req *lynx.Request) (lynx.Msg, error) {
				var a, b int64
				if err := codec.Unmarshal(req.Data(), &a, &b); err != nil {
					return lynx.Msg{}, err
				}
				return lynx.Msg{Data: codec.MustMarshal(a + b)}, nil
			},
			"fail": func(st *lynx.Thread, req *lynx.Request) (lynx.Msg, error) {
				return lynx.Msg{}, errors.New("deliberate")
			},
		})
	})
	sys.Join(c, s)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
	if !errors.Is(unknownErr, lynx.ErrNoSuchOperation) {
		t.Fatalf("unknown op err = %v", unknownErr)
	}
	if failErr == nil || !strings.Contains(failErr.Error(), "deliberate") {
		t.Fatalf("handler err = %v", failErr)
	}
}

func TestCallPropagatesTransportErrors(t *testing.T) {
	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Ideal, Seed: 1})
	var callErr error
	c := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
		_, callErr = lynx.Call(th, boot[0], "op", lynx.Msg{})
	})
	s := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
		th.Sleep(2 * lynx.Millisecond)
		th.Destroy(boot[0])
	})
	sys.Join(c, s)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(callErr, lynx.ErrLinkDestroyed) {
		t.Fatalf("call err = %v", callErr)
	}
}
