package lynx

import (
	sodabind "repro/internal/bind/soda"
	"repro/internal/obs/flight"
)

// TraceOptions configures the flight recorder for a System. The zero
// value (mode Off) records nothing and creates no recorder.
type TraceOptions struct {
	// Mode selects flight.Full, flight.Sampled or flight.Counters;
	// flight.Off (the zero value) disables recording.
	Mode flight.Mode
	// SampleK is the Sampled-mode divisor (one event in K exported).
	// 0 = default (64).
	SampleK int
	// Ring is the ring-buffer capacity in events, rounded up to a
	// power of two. 0 = default (4096).
	Ring int
}

// CharlotteOptions are the knobs specific to the Charlotte substrate.
// The zero value inherits every default.
type CharlotteOptions struct {
	// BufCap overrides Config.BufCap for this substrate (0 = inherit).
	BufCap int
}

// SODAOptions are the knobs specific to the SODA substrate. The zero
// value inherits every default (move cache of 64 entries, 250 ms hint
// timeout, 3 discover retries, freeze fallback enabled, no pair limit).
// Fields whose useful setting is zero use a negative sentinel to
// distinguish "off" from "default".
type SODAOptions struct {
	// BufCap overrides Config.BufCap for this substrate (0 = inherit).
	BufCap int
	// PairLimit caps outstanding requests between one process pair
	// (§4.2.1's "unspecified constant"). 0 = unlimited — the default,
	// because every link awaiting traffic pins one status signal, so any
	// finite limit livelocks once links-per-pair exceed it (measured in
	// E12; the paper predicted exactly this).
	PairLimit int
	// CacheSize is the move-cache capacity in entries. 0 = default (64);
	// negative = cache disabled.
	CacheSize int
	// HintTimeout is how long a put chases stale hints before falling
	// back to discovery. 0 = default (250 ms).
	HintTimeout Duration
	// DiscoverRetries is the number of discover broadcasts before the
	// freeze fallback. 0 = default (3); negative = discovery disabled.
	DiscoverRetries int
	// DisableFreeze turns off the absolute-search fallback (E10's
	// "freeze" mechanism), which is on by default.
	DisableFreeze bool
}

// ChrysalisOptions are the knobs specific to the Chrysalis substrate.
// The zero value inherits every default.
type ChrysalisOptions struct {
	// BufCap overrides Config.BufCap for this substrate (0 = inherit).
	BufCap int
	// Tuned applies the §5.3 "30-40%" optimizations (E9).
	Tuned bool
}

// normalized resolves defaults and folds the deprecated top-level
// aliases into the per-substrate blocks.
func (cfg Config) normalized() Config {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 20
	}
	if cfg.BufCap <= 0 {
		cfg.BufCap = 4096
	}
	// SimWorkers <= 0 is the serial default; the value never affects
	// results (see Config.SimWorkers), only wall-clock execution.
	if cfg.SimWorkers <= 0 {
		cfg.SimWorkers = 1
	}
	if cfg.Tuned {
		cfg.Chrysalis.Tuned = true
	}
	if cfg.SODA.PairLimit == 0 {
		cfg.SODA.PairLimit = cfg.SODAPairLimit
	}
	if cfg.Charlotte.BufCap <= 0 {
		cfg.Charlotte.BufCap = cfg.BufCap
	}
	if cfg.SODA.BufCap <= 0 {
		cfg.SODA.BufCap = cfg.BufCap
	}
	if cfg.Chrysalis.BufCap <= 0 {
		cfg.Chrysalis.BufCap = cfg.BufCap
	}
	return cfg
}

// bindConfig lowers the options onto the SODA binding's config struct.
// Called after normalized(), so BufCap is already resolved.
func (o SODAOptions) bindConfig() sodabind.Config {
	c := sodabind.DefaultConfig()
	c.BufCap = o.BufCap
	switch {
	case o.CacheSize > 0:
		c.CacheSize = o.CacheSize
	case o.CacheSize < 0:
		c.CacheSize = 0
	}
	if o.HintTimeout > 0 {
		c.HintTimeout = o.HintTimeout
	}
	switch {
	case o.DiscoverRetries > 0:
		c.DiscoverRetries = o.DiscoverRetries
	case o.DiscoverRetries < 0:
		c.DiscoverRetries = 0
	}
	if o.DisableFreeze {
		c.EnableFreeze = false
	}
	return c
}
