package lynx_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/lynx"
)

// runTrioFlight runs the echo-trio workload (three independent
// client/server pairs — the partitionable shape, see runEchoTrio) with
// the System's flight recorder wired to a JSONL exporter, and returns
// the exported trace plus whether the parallel engine engaged.
func runTrioFlight(t *testing.T, cfg lynx.Config) ([]byte, *flight.Recorder, bool) {
	t.Helper()
	sys := lynx.NewSystem(cfg)
	var buf bytes.Buffer
	sys.Flight().Attach(&obs.JSONLExporter{W: &buf})
	for i := 0; i < 3; i++ {
		i := i
		client := sys.Spawn(fmt.Sprintf("client-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			for n := 0; n < 3; n++ {
				reply, err := th.Connect(boot[0], "echo", lynx.Msg{Data: []byte{byte(i), byte(n)}})
				if err != nil {
					t.Errorf("client-%d: %v", i, err)
					return
				}
				if len(reply.Data) != 2 {
					t.Errorf("client-%d: bad echo %v", i, reply.Data)
				}
				th.Delay(lynx.Duration(i+1) * 100 * lynx.Microsecond)
			}
			th.Destroy(boot[0])
		})
		server := sys.Spawn(fmt.Sprintf("server-%d", i), func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		})
		sys.Join(client, server)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return buf.Bytes(), sys.Flight(), sys.Parallel()
}

// TestFlightFullModeMatchesDirectTrace: a full-mode flight recorder is
// a pass-through — the JSONL stream leaving it is byte-identical to the
// stream an exporter attached directly to the obs recorder sees. This
// is the "full mode is today's behavior" contract that keeps the
// scheduler goldens valid for traced runs.
func TestFlightFullModeMatchesDirectTrace(t *testing.T) {
	cfg := lynx.Config{Substrate: lynx.Ideal, Seed: 7}
	full := cfg
	full.Trace = lynx.TraceOptions{Mode: flight.Full}
	got, fr, _ := runTrioFlight(t, full)

	// The identical workload, untraced, with the exporter attached
	// directly to the obs recorder (runEchoTrio's wiring).
	want, _ := runEchoTrio(t, cfg)
	if len(want) == 0 {
		t.Fatal("untraced run emitted nothing")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("full-mode trace differs from direct trace: %d bytes vs %d", len(got), len(want))
	}
	if fr.Seen() != fr.Exported() {
		t.Errorf("full mode: seen %d != exported %d", fr.Seen(), fr.Exported())
	}
}

// TestSampledTraceWorkerInvariance is the tentpole determinism gate for
// sampled mode: the same seed must export the byte-identical 1-in-K
// trace at SimWorkers 1, 2 and 4 — with the parallel engine genuinely
// engaged at the higher counts — because sampling hashes serial-replay
// ordinals, not arrival order.
func TestSampledTraceWorkerInvariance(t *testing.T) {
	trace := func(workers int) []byte {
		cfg := lynx.Config{Substrate: lynx.Ideal, Seed: 7, SimWorkers: workers,
			Trace: lynx.TraceOptions{Mode: flight.Sampled, SampleK: 4}}
		got, fr, parallel := runTrioFlight(t, cfg)
		if wantPar := workers > 1; parallel != wantPar {
			t.Fatalf("Parallel() = %v at SimWorkers=%d, want %v", parallel, workers, wantPar)
		}
		if fr.Exported() == 0 || fr.Exported() >= fr.Seen() {
			t.Fatalf("SimWorkers=%d: exported %d of %d seen — not a strict sample",
				workers, fr.Exported(), fr.Seen())
		}
		return got
	}
	base := trace(1)
	if len(base) == 0 {
		t.Fatal("no events sampled at SimWorkers=1 (K=4)")
	}
	for _, workers := range []int{2, 4} {
		if got := trace(workers); !bytes.Equal(got, base) {
			t.Errorf("sampled trace differs at SimWorkers=%d: got %d bytes, want %d",
				workers, len(got), len(base))
		}
	}
}

// TestCountersModeExportsNothing: counters-only still rings and counts
// but forwards no events downstream.
func TestCountersModeExportsNothing(t *testing.T) {
	cfg := lynx.Config{Substrate: lynx.Ideal, Seed: 7,
		Trace: lynx.TraceOptions{Mode: flight.Counters, Ring: 64}}
	got, fr, _ := runTrioFlight(t, cfg)
	if len(got) != 0 {
		t.Errorf("counters mode exported %d bytes", len(got))
	}
	if fr.Seen() == 0 || fr.RingLen() == 0 {
		t.Errorf("counters mode saw %d events, ring %d — want both nonzero", fr.Seen(), fr.RingLen())
	}
	if fr.Exported() != 0 {
		t.Errorf("counters mode exported %d events", fr.Exported())
	}
}
