package lynx_test

import (
	"testing"

	"repro/internal/obs"
	"repro/lynx"
)

// runEcho runs one request/reply pair between two spawned processes and
// returns the system and both refs (client first).
func runEcho(t *testing.T, cfg lynx.Config) (*lynx.System, *lynx.ProcRef, *lynx.ProcRef) {
	t.Helper()
	sys := lynx.NewSystem(cfg)
	client := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
		if _, err := th.Connect(boot[0], "echo", lynx.Msg{Data: []byte("ping")}); err != nil {
			t.Errorf("connect: %v", err)
		}
		th.Destroy(boot[0])
	})
	server := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{Data: req.Data()})
		})
	})
	sys.Join(client, server)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys, client, server
}

// TestStatsFacade checks the substrate-neutral Stats() surface: the
// typed accessors hand back exactly what the deprecated wrappers return,
// only the active substrate's view is non-nil, and the generic Value
// lookups read the same registry.
func TestStatsFacade(t *testing.T) {
	allSubstrates(t, func(t *testing.T, sub lynx.Substrate) {
		sys, client, server := runEcho(t, lynx.Config{Substrate: sub, Seed: 21})
		st := sys.Stats()
		if st.Substrate() != sub {
			t.Fatalf("Substrate() = %v, want %v", st.Substrate(), sub)
		}
		if st.Bytes() <= 0 {
			t.Errorf("Stats().Bytes() = %d, want > 0", st.Bytes())
		}
		if st.Value(obs.MKernelBytes) != st.Bytes() {
			t.Errorf("Value(MKernelBytes) = %d != Bytes() = %d",
				st.Value(obs.MKernelBytes), st.Bytes())
		}
		// Exactly the active substrate's typed view is non-nil, and the
		// deprecated wrappers agree with the facade.
		nonNil := 0
		if got, old := st.Charlotte(), sys.CharlotteKernelStats(); (got == nil) != (old == nil) {
			t.Error("CharlotteKernelStats disagrees with Stats().Charlotte()")
		} else if got != nil {
			nonNil++
		}
		if got, old := st.SODA(), sys.SODAKernelStats(); (got == nil) != (old == nil) {
			t.Error("SODAKernelStats disagrees with Stats().SODA()")
		} else if got != nil {
			nonNil++
		}
		if got, old := st.Chrysalis(), sys.ChrysalisKernelStats(); (got == nil) != (old == nil) {
			t.Error("ChrysalisKernelStats disagrees with Stats().Chrysalis()")
		} else if got != nil {
			nonNil++
		}
		wantNonNil := 1
		if sub == lynx.Ideal {
			wantNonNil = 0 // Ideal has no kernel counter struct
		}
		if nonNil != wantNonNil {
			t.Errorf("%d typed kernel views non-nil, want %d", nonNil, wantNonNil)
		}
		for _, p := range []*lynx.ProcRef{client, server} {
			ps := p.Stats()
			if ps.Runtime() == nil {
				t.Fatalf("%s: Runtime() nil", p.Name())
			}
			if c, o := ps.Charlotte(), p.CharlotteStats(); (c == nil) != (o == nil) {
				t.Errorf("%s: CharlotteStats wrapper disagrees", p.Name())
			}
			if c, o := ps.SODA(), p.SODAStats(); (c == nil) != (o == nil) {
				t.Errorf("%s: SODAStats wrapper disagrees", p.Name())
			}
			if c, o := ps.Chrysalis(), p.ChrysalisStats(); (c == nil) != (o == nil) {
				t.Errorf("%s: ChrysalisStats wrapper disagrees", p.Name())
			}
		}
		if client.Stats().Runtime().RequestsSent == 0 {
			t.Error("client RequestsSent = 0")
		}
		if server.Stats().Runtime().RequestsServed == 0 {
			t.Error("server RequestsServed = 0")
		}
	})
}

// TestLaunchStatsAttribution launches a child mid-run on every substrate
// and checks the child is a first-class citizen of the stats surface:
// the boot link works, a kernel pid is assigned (distinct from the
// parent's), and counters are attributed to the child.
func TestLaunchStatsAttribution(t *testing.T) {
	allSubstrates(t, func(t *testing.T, sub lynx.Substrate) {
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 22})
		var child *lynx.ProcRef
		parent := sys.Spawn("parent", func(th *lynx.Thread, boot []*lynx.End) {
			link, ref := sys.Launch(th, "child", func(ct *lynx.Thread, cboot []*lynx.End) {
				ct.Serve(cboot[0], func(st *lynx.Thread, req *lynx.Request) {
					st.Reply(req, lynx.Msg{Data: req.Data()})
				})
			})
			child = ref
			if _, err := th.Connect(link, "work", lynx.Msg{Data: []byte("x")}); err != nil {
				t.Errorf("call child: %v", err)
			}
			th.Destroy(link)
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if child == nil {
			t.Fatal("Launch never ran")
		}
		if sub == lynx.Ideal {
			if pid := child.KernelPID(); pid != -1 {
				t.Errorf("Ideal child KernelPID = %d, want -1", pid)
			}
		} else {
			if pid := child.KernelPID(); pid < 0 {
				t.Errorf("child KernelPID = %d, want >= 0", pid)
			}
			if child.KernelPID() == parent.KernelPID() {
				t.Errorf("child and parent share KernelPID %d", child.KernelPID())
			}
		}
		// The child's work is attributed to the child, not the launcher.
		if got := child.Stats().Runtime().RequestsServed; got != 1 {
			t.Errorf("child RequestsServed = %d, want 1", got)
		}
		if got := parent.Stats().Runtime().RequestsServed; got != 0 {
			t.Errorf("parent RequestsServed = %d, want 0", got)
		}
		if got := parent.Stats().Runtime().RequestsSent; got != 1 {
			t.Errorf("parent RequestsSent = %d, want 1", got)
		}
	})
}

// TestMetricsNilSafe pins the Obs()/Metrics() nil chain: a System with
// no recorder must hand back the nil registry, whose lookups report
// zero instead of panicking (the documented obs contract).
func TestMetricsNilSafe(t *testing.T) {
	var s lynx.System // zero value: no kernel, Obs() documents returning nil
	if s.Obs() != nil {
		t.Fatal("zero-value System Obs() != nil")
	}
	if m := s.Metrics(); m != nil {
		t.Fatalf("zero-value System Metrics() = %v, want nil registry", m)
	}
	if v := s.Metrics().Value(obs.MKernelBytes); v != 0 {
		t.Errorf("nil registry Value = %d, want 0", v)
	}
	if v := s.Stats().Bytes(); v != 0 {
		t.Errorf("nil registry Stats().Bytes() = %d, want 0", v)
	}
	if v := s.Stats().Value("no_such_metric"); v != 0 {
		t.Errorf("nil registry Stats().Value = %d, want 0", v)
	}
}

// TestDeprecatedConfigFields checks the deprecated top-level knobs
// remain exact aliases of the per-substrate option blocks: the same
// workload must take the same virtual time either way.
func TestDeprecatedConfigFields(t *testing.T) {
	now := func(cfg lynx.Config) lynx.Time {
		sys, _, _ := runEcho(t, cfg)
		return sys.Now()
	}
	oldTuned := now(lynx.Config{Substrate: lynx.Chrysalis, Seed: 5, Tuned: true})
	newTuned := now(lynx.Config{Substrate: lynx.Chrysalis, Seed: 5,
		Chrysalis: lynx.ChrysalisOptions{Tuned: true}})
	if oldTuned != newTuned {
		t.Errorf("Tuned alias: %v != %v", oldTuned, newTuned)
	}
	untuned := now(lynx.Config{Substrate: lynx.Chrysalis, Seed: 5})
	if untuned == newTuned {
		t.Error("Tuned option had no effect")
	}
	oldLim := now(lynx.Config{Substrate: lynx.SODA, Seed: 5, SODAPairLimit: 2})
	newLim := now(lynx.Config{Substrate: lynx.SODA, Seed: 5,
		SODA: lynx.SODAOptions{PairLimit: 2}})
	if oldLim != newLim {
		t.Errorf("SODAPairLimit alias: %v != %v", oldLim, newLim)
	}
}
