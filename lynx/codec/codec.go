// Package codec marshals typed operation parameters into LYNX message
// payloads. LYNX was a typed language: remote operations carried typed
// parameter lists, and the run-time package "performed type checking"
// and confirmed operation names and types on replies (§3.3). This
// package gives Go callers the same property: values are encoded with
// self-describing type tags, and decoding into mismatched types fails
// loudly instead of misinterpreting bytes.
//
//	payload, err := codec.Marshal("transfer", int64(250), true)
//	...
//	var op string
//	var amount int64
//	var audited bool
//	err = codec.Unmarshal(payload, &op, &amount, &audited)
//
// Supported kinds: bool, all fixed-size ints and uints, int/uint
// (encoded as 64-bit), float32/float64, string, []byte, slices of
// supported types, and structs whose exported fields are supported.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
)

// Type tags on the wire.
const (
	tagBool byte = iota + 1
	tagInt8
	tagInt16
	tagInt32
	tagInt64
	tagUint8
	tagUint16
	tagUint32
	tagUint64
	tagFloat32
	tagFloat64
	tagString
	tagBytes
	tagSlice
	tagStruct
)

func tagName(t byte) string {
	names := map[byte]string{
		tagBool: "bool", tagInt8: "int8", tagInt16: "int16", tagInt32: "int32",
		tagInt64: "int64", tagUint8: "uint8", tagUint16: "uint16",
		tagUint32: "uint32", tagUint64: "uint64", tagFloat32: "float32",
		tagFloat64: "float64", tagString: "string", tagBytes: "[]byte",
		tagSlice: "slice", tagStruct: "struct",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("tag(%d)", t)
}

// ErrTypeMismatch is wrapped by decode errors when the wire tag does not
// match the destination's type — the LYNX "type checking" failure.
var ErrTypeMismatch = errors.New("codec: type mismatch")

// ErrShortPayload is wrapped when the payload ends prematurely.
var ErrShortPayload = errors.New("codec: short payload")

// Marshal encodes vals into a self-describing payload.
func Marshal(vals ...any) ([]byte, error) {
	var buf []byte
	for i, v := range vals {
		var err error
		buf, err = appendValue(buf, reflect.ValueOf(v))
		if err != nil {
			return nil, fmt.Errorf("codec: argument %d: %w", i, err)
		}
	}
	return buf, nil
}

// Unmarshal decodes a payload into the pointed-to destinations, checking
// every type tag.
func Unmarshal(data []byte, ptrs ...any) error {
	rest := data
	for i, p := range ptrs {
		rv := reflect.ValueOf(p)
		if rv.Kind() != reflect.Pointer || rv.IsNil() {
			return fmt.Errorf("codec: destination %d is not a non-nil pointer", i)
		}
		var err error
		rest, err = readValue(rest, rv.Elem())
		if err != nil {
			return fmt.Errorf("codec: argument %d: %w", i, err)
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("codec: %d trailing bytes (arity mismatch)", len(rest))
	}
	return nil
}

// MustMarshal is Marshal panicking on error (static arguments).
func MustMarshal(vals ...any) []byte {
	buf, err := Marshal(vals...)
	if err != nil {
		panic(err)
	}
	return buf
}

func appendValue(buf []byte, v reflect.Value) ([]byte, error) {
	switch v.Kind() {
	case reflect.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		return append(buf, tagBool, b), nil
	case reflect.Int8:
		return append(buf, tagInt8, byte(v.Int())), nil
	case reflect.Int16:
		return binary.LittleEndian.AppendUint16(append(buf, tagInt16), uint16(v.Int())), nil
	case reflect.Int32:
		return binary.LittleEndian.AppendUint32(append(buf, tagInt32), uint32(v.Int())), nil
	case reflect.Int64, reflect.Int:
		return binary.LittleEndian.AppendUint64(append(buf, tagInt64), uint64(v.Int())), nil
	case reflect.Uint8:
		return append(buf, tagUint8, byte(v.Uint())), nil
	case reflect.Uint16:
		return binary.LittleEndian.AppendUint16(append(buf, tagUint16), uint16(v.Uint())), nil
	case reflect.Uint32:
		return binary.LittleEndian.AppendUint32(append(buf, tagUint32), uint32(v.Uint())), nil
	case reflect.Uint64, reflect.Uint:
		return binary.LittleEndian.AppendUint64(append(buf, tagUint64), v.Uint()), nil
	case reflect.Float32:
		return binary.LittleEndian.AppendUint32(append(buf, tagFloat32), math.Float32bits(float32(v.Float()))), nil
	case reflect.Float64:
		return binary.LittleEndian.AppendUint64(append(buf, tagFloat64), math.Float64bits(v.Float())), nil
	case reflect.String:
		buf = append(buf, tagString)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Len()))
		return append(buf, v.String()...), nil
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Uint8 {
			buf = append(buf, tagBytes)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Len()))
			return append(buf, v.Bytes()...), nil
		}
		buf = append(buf, tagSlice)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Len()))
		for i := 0; i < v.Len(); i++ {
			var err error
			buf, err = appendValue(buf, v.Index(i))
			if err != nil {
				return nil, fmt.Errorf("[%d]: %w", i, err)
			}
		}
		return buf, nil
	case reflect.Struct:
		fields := exportedFields(v.Type())
		buf = append(buf, tagStruct)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fields)))
		for _, fi := range fields {
			var err error
			buf, err = appendValue(buf, v.Field(fi))
			if err != nil {
				return nil, fmt.Errorf(".%s: %w", v.Type().Field(fi).Name, err)
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("codec: unsupported kind %v", v.Kind())
	}
}

func readValue(data []byte, dst reflect.Value) ([]byte, error) {
	if len(data) == 0 {
		return nil, ErrShortPayload
	}
	tag := data[0]
	data = data[1:]
	fail := func() ([]byte, error) {
		return nil, fmt.Errorf("%w: wire has %s, destination is %v",
			ErrTypeMismatch, tagName(tag), dst.Type())
	}
	need := func(n int) error {
		if len(data) < n {
			return ErrShortPayload
		}
		return nil
	}
	switch tag {
	case tagBool:
		if dst.Kind() != reflect.Bool {
			return fail()
		}
		if err := need(1); err != nil {
			return nil, err
		}
		dst.SetBool(data[0] != 0)
		return data[1:], nil
	case tagInt8, tagInt16, tagInt32, tagInt64:
		size := map[byte]int{tagInt8: 1, tagInt16: 2, tagInt32: 4, tagInt64: 8}[tag]
		wantKind := map[byte]reflect.Kind{
			tagInt8: reflect.Int8, tagInt16: reflect.Int16,
			tagInt32: reflect.Int32, tagInt64: reflect.Int64,
		}[tag]
		k := dst.Kind()
		if k != wantKind && !(tag == tagInt64 && k == reflect.Int) {
			return fail()
		}
		if err := need(size); err != nil {
			return nil, err
		}
		var u uint64
		switch size {
		case 1:
			u = uint64(data[0])
			dst.SetInt(int64(int8(u)))
		case 2:
			u = uint64(binary.LittleEndian.Uint16(data))
			dst.SetInt(int64(int16(u)))
		case 4:
			u = uint64(binary.LittleEndian.Uint32(data))
			dst.SetInt(int64(int32(u)))
		case 8:
			u = binary.LittleEndian.Uint64(data)
			dst.SetInt(int64(u))
		}
		return data[size:], nil
	case tagUint8, tagUint16, tagUint32, tagUint64:
		size := map[byte]int{tagUint8: 1, tagUint16: 2, tagUint32: 4, tagUint64: 8}[tag]
		wantKind := map[byte]reflect.Kind{
			tagUint8: reflect.Uint8, tagUint16: reflect.Uint16,
			tagUint32: reflect.Uint32, tagUint64: reflect.Uint64,
		}[tag]
		k := dst.Kind()
		if k != wantKind && !(tag == tagUint64 && k == reflect.Uint) {
			return fail()
		}
		if err := need(size); err != nil {
			return nil, err
		}
		switch size {
		case 1:
			dst.SetUint(uint64(data[0]))
		case 2:
			dst.SetUint(uint64(binary.LittleEndian.Uint16(data)))
		case 4:
			dst.SetUint(uint64(binary.LittleEndian.Uint32(data)))
		case 8:
			dst.SetUint(binary.LittleEndian.Uint64(data))
		}
		return data[size:], nil
	case tagFloat32:
		if dst.Kind() != reflect.Float32 {
			return fail()
		}
		if err := need(4); err != nil {
			return nil, err
		}
		dst.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(data))))
		return data[4:], nil
	case tagFloat64:
		if dst.Kind() != reflect.Float64 {
			return fail()
		}
		if err := need(8); err != nil {
			return nil, err
		}
		dst.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(data)))
		return data[8:], nil
	case tagString:
		if dst.Kind() != reflect.String {
			return fail()
		}
		if err := need(4); err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if err := need(n); err != nil {
			return nil, err
		}
		dst.SetString(string(data[:n]))
		return data[n:], nil
	case tagBytes:
		if dst.Kind() != reflect.Slice || dst.Type().Elem().Kind() != reflect.Uint8 {
			return fail()
		}
		if err := need(4); err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if err := need(n); err != nil {
			return nil, err
		}
		out := make([]byte, n)
		copy(out, data)
		dst.SetBytes(out)
		return data[n:], nil
	case tagSlice:
		if dst.Kind() != reflect.Slice {
			return fail()
		}
		if err := need(4); err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		s := reflect.MakeSlice(dst.Type(), n, n)
		for i := 0; i < n; i++ {
			var err error
			data, err = readValue(data, s.Index(i))
			if err != nil {
				return nil, fmt.Errorf("[%d]: %w", i, err)
			}
		}
		dst.Set(s)
		return data, nil
	case tagStruct:
		if dst.Kind() != reflect.Struct {
			return fail()
		}
		if err := need(4); err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		fields := exportedFields(dst.Type())
		if n != len(fields) {
			return nil, fmt.Errorf("%w: wire struct has %d fields, %v has %d",
				ErrTypeMismatch, n, dst.Type(), len(fields))
		}
		for _, fi := range fields {
			var err error
			data, err = readValue(data, dst.Field(fi))
			if err != nil {
				return nil, fmt.Errorf(".%s: %w", dst.Type().Field(fi).Name, err)
			}
		}
		return data, nil
	default:
		return nil, fmt.Errorf("codec: unknown wire tag %d", tag)
	}
}

// exportedFields returns indices of a struct type's exported fields.
func exportedFields(t reflect.Type) []int {
	var out []int
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).IsExported() {
			out = append(out, i)
		}
	}
	return out
}
