package codec

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, vals []any, ptrs []any, want []any) {
	t.Helper()
	buf, err := Marshal(vals...)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if err := Unmarshal(buf, ptrs...); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	for i := range ptrs {
		got := reflect.ValueOf(ptrs[i]).Elem().Interface()
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("value %d: got %#v, want %#v", i, got, want[i])
		}
	}
}

func TestScalars(t *testing.T) {
	var b bool
	var i8 int8
	var i16 int16
	var i32 int32
	var i64 int64
	var i int
	var u8 uint8
	var u16 uint16
	var u32 uint32
	var u64 uint64
	var f32 float32
	var f64 float64
	var s string
	roundTrip(t,
		[]any{true, int8(-5), int16(-300), int32(-70000), int64(-1 << 40), int(12345),
			uint8(200), uint16(60000), uint32(4e9), uint64(1 << 60),
			float32(3.5), float64(math.Pi), "hello"},
		[]any{&b, &i8, &i16, &i32, &i64, &i, &u8, &u16, &u32, &u64, &f32, &f64, &s},
		[]any{true, int8(-5), int16(-300), int32(-70000), int64(-1 << 40), 12345,
			uint8(200), uint16(60000), uint32(4e9), uint64(1 << 60),
			float32(3.5), math.Pi, "hello"},
	)
}

func TestBytesAndSlices(t *testing.T) {
	var bs []byte
	var ss []string
	var nested [][]int32
	roundTrip(t,
		[]any{[]byte{1, 2, 3}, []string{"a", "bb"}, [][]int32{{1}, {2, 3}}},
		[]any{&bs, &ss, &nested},
		[]any{[]byte{1, 2, 3}, []string{"a", "bb"}, [][]int32{{1}, {2, 3}}},
	)
}

type order struct {
	ID     uint64
	Ticker string
	Qty    int32
	Limit  float64
	hidden int // unexported: skipped
}

func TestStructs(t *testing.T) {
	in := order{ID: 7, Ticker: "LYNX", Qty: -3, Limit: 19.86, hidden: 99}
	var out order
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	in.hidden = 0 // not transported
	if out != in {
		t.Fatalf("got %+v want %+v", out, in)
	}
}

func TestTypeMismatchDetected(t *testing.T) {
	buf := MustMarshal(int32(5))
	var s string
	err := Unmarshal(buf, &s)
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v, want ErrTypeMismatch", err)
	}
	// Width mismatches are also type errors, not silent coercions.
	var i64 int64
	if err := Unmarshal(buf, &i64); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("int32->int64: %v", err)
	}
	var u32 uint32
	if err := Unmarshal(buf, &u32); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("int32->uint32: %v", err)
	}
}

func TestArityMismatchDetected(t *testing.T) {
	buf := MustMarshal(int32(5), "x")
	var i int32
	if err := Unmarshal(buf, &i); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("missing-arg decode: %v", err)
	}
	var s string
	var extra bool
	if err := Unmarshal(buf, &i, &s, &extra); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("extra-arg decode: %v", err)
	}
}

func TestShortPayloadDetected(t *testing.T) {
	buf := MustMarshal("a longer string value")
	var s string
	for cut := 1; cut < len(buf); cut++ {
		if err := Unmarshal(buf[:cut], &s); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestUnmarshalNeedsPointers(t *testing.T) {
	buf := MustMarshal(true)
	var b bool
	if err := Unmarshal(buf, b); err == nil {
		t.Fatal("non-pointer destination accepted")
	}
	if err := Unmarshal(buf, (*bool)(nil)); err == nil {
		t.Fatal("nil pointer accepted")
	}
	_ = b
}

func TestUnsupportedKinds(t *testing.T) {
	if _, err := Marshal(map[string]int{"a": 1}); err == nil {
		t.Fatal("map marshalled")
	}
	ch := make(chan int)
	if _, err := Marshal(ch); err == nil {
		t.Fatal("chan marshalled")
	}
}

func TestStructFieldCountMismatch(t *testing.T) {
	type two struct{ A, B int32 }
	type three struct{ A, B, C int32 }
	buf := MustMarshal(two{1, 2})
	var dst three
	if err := Unmarshal(buf, &dst); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("field-count mismatch: %v", err)
	}
}

// Property: every supported random tuple round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	type payload struct {
		B  bool
		I  int64
		U  uint32
		F  float64
		S  string
		Bs []byte
		Ns []int16
	}
	f := func(p payload) bool {
		buf, err := Marshal(p)
		if err != nil {
			return false
		}
		var out payload
		if err := Unmarshal(buf, &out); err != nil {
			return false
		}
		// nil and empty slices are equivalent on the wire.
		if len(p.Bs) == 0 {
			p.Bs = out.Bs
		}
		if len(p.Ns) == 0 {
			p.Ns = out.Ns
		}
		return reflect.DeepEqual(p, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: corrupt tags never panic, always error.
func TestCorruptTagsProperty(t *testing.T) {
	f := func(junk []byte) bool {
		var s string
		var i int64
		// Must not panic; error or (improbably) success are both fine.
		_ = Unmarshal(junk, &s, &i)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMustMarshalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustMarshal(make(chan int))
}
