package lynx

import (
	chbind "repro/internal/bind/charlotte"
	chrbind "repro/internal/bind/chrysalis"
	sodabind "repro/internal/bind/soda"
	"repro/internal/charlotte"
	"repro/internal/chrysalis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/soda"
)

// SystemStats is a substrate-neutral view of a run's kernel activity: a
// typed window onto the internal/obs metric registry plus, for callers
// that need the full substrate-specific breakdown, the typed kernel
// counter structs. Obtain one with System.Stats(); every accessor is
// safe on any substrate (the ones that do not apply report zero or nil).
type SystemStats struct {
	sys *System
}

// Stats returns the substrate-neutral statistics view. It replaces the
// substrate-specific CharlotteKernelStats/SODAKernelStats/
// ChrysalisKernelStats trio: generic counters are read by obs metric
// name via Value, and the typed kernel structs remain reachable through
// Charlotte/SODA/Chrysalis for the one substrate that is active.
func (s *System) Stats() SystemStats { return SystemStats{sys: s} }

// Substrate reports which kernel the system runs on.
func (st SystemStats) Substrate() Substrate { return st.sys.cfg.Substrate }

// Metrics returns the underlying obs registry (nil-safe: lookups on a
// nil registry report zero).
func (st SystemStats) Metrics() *obs.Metrics { return st.sys.Metrics() }

// Value reads a kernel-level counter by its obs metric name (the obs.M*
// constants), 0 if the substrate never emits it.
func (st SystemStats) Value(name string) int64 { return st.sys.Metrics().Value(name) }

// Bytes reports payload bytes moved by the kernel — the one headline
// counter every substrate emits (obs.MKernelBytes).
func (st SystemStats) Bytes() int64 { return st.Value(obs.MKernelBytes) }

// Charlotte returns the typed Charlotte kernel counters (nil on other
// substrates).
func (st SystemStats) Charlotte() *charlotte.Stats {
	if st.sys.charK == nil {
		return nil
	}
	return st.sys.charK.Stats()
}

// SODA returns the typed SODA kernel counters (nil on other substrates).
func (st SystemStats) SODA() *soda.Stats {
	if st.sys.sodaK == nil {
		return nil
	}
	return st.sys.sodaK.Stats()
}

// Chrysalis returns the typed Chrysalis kernel counters (nil on other
// substrates).
func (st SystemStats) Chrysalis() *chrysalis.Stats {
	if st.sys.chrK == nil {
		return nil
	}
	return st.sys.chrK.Stats()
}

// ProcStats is the per-process counterpart of SystemStats: run-time
// package counters plus this process's slice of the obs registry
// (per-process metrics are keyed by kernel pid). Obtain one with
// ProcRef.Stats().
type ProcStats struct {
	p *ProcRef
}

// Stats returns the process's substrate-neutral statistics view,
// replacing the CharlotteStats/SODAStats/ChrysalisStats trio.
func (p *ProcRef) Stats() ProcStats { return ProcStats{p: p} }

// Runtime returns the run-time package counters (zero before Run).
func (ps ProcStats) Runtime() *core.Stats { return ps.p.RuntimeStats() }

// Value reads this process's per-process counter by its obs metric name
// (the binding-level obs.M* constants), 0 if never emitted.
func (ps ProcStats) Value(name string) int64 {
	return ps.p.sys.Metrics().ProcValue(name, ps.p.KernelPID())
}

// Charlotte returns the typed Charlotte binding counters (nil on other
// substrates).
func (ps ProcStats) Charlotte() *chbind.Stats {
	if ps.p.chTr == nil {
		return nil
	}
	return ps.p.chTr.Stats()
}

// SODA returns the typed SODA binding counters (nil on other substrates).
func (ps ProcStats) SODA() *sodabind.Stats {
	if ps.p.sodaTr == nil {
		return nil
	}
	return ps.p.sodaTr.Stats()
}

// Chrysalis returns the typed Chrysalis binding counters (nil on other
// substrates).
func (ps ProcStats) Chrysalis() *chrbind.Stats {
	if ps.p.chrTr == nil {
		return nil
	}
	return ps.p.chrTr.Stats()
}
