package lynx_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/lynx"
)

// allSubstrates runs a subtest per substrate.
func allSubstrates(t *testing.T, f func(t *testing.T, sub lynx.Substrate)) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis, lynx.Ideal} {
		sub := sub
		t.Run(sub.String(), func(t *testing.T) { f(t, sub) })
	}
}

func TestEchoAcrossAllSubstrates(t *testing.T) {
	allSubstrates(t, func(t *testing.T, sub lynx.Substrate) {
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 7})
		var got string
		client := sys.Spawn("client", func(th *lynx.Thread, boot []*lynx.End) {
			reply, err := th.Connect(boot[0], "echo", lynx.Msg{Data: []byte("hello")})
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			got = string(reply.Data)
			th.Destroy(boot[0])
		})
		server := sys.Spawn("server", func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		})
		sys.Join(client, server)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if got != "hello" {
			t.Fatalf("got %q", got)
		}
	})
}

func TestLinkMotionAcrossAllSubstrates(t *testing.T) {
	// The figure-1 shape: a link end created at A ends up at B via an
	// enclosure, and RPC over the moved link works.
	allSubstrates(t, func(t *testing.T, sub lynx.Substrate) {
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 11})
		ok := false
		a := sys.Spawn("a", func(th *lynx.Thread, boot []*lynx.End) {
			mine, theirs, err := th.NewLink()
			if err != nil {
				t.Errorf("NewLink: %v", err)
				return
			}
			if _, err := th.Connect(boot[0], "take", lynx.Msg{Links: []*lynx.End{theirs}}); err != nil {
				t.Errorf("move: %v", err)
				return
			}
			reply, err := th.Connect(mine, "ping", lynx.Msg{Data: []byte("x")})
			if err != nil {
				t.Errorf("over moved link: %v", err)
				return
			}
			ok = string(reply.Data) == "x!"
			th.Destroy(mine)
			th.Destroy(boot[0])
		})
		b := sys.Spawn("b", func(th *lynx.Thread, boot []*lynx.End) {
			req, err := th.Receive(boot[0])
			if err != nil {
				t.Errorf("Receive: %v", err)
				return
			}
			th.Serve(req.Links()[0], func(st *lynx.Thread, r2 *lynx.Request) {
				st.Reply(r2, lynx.Msg{Data: append(r2.Data(), '!')})
			})
			th.Reply(req, lynx.Msg{})
		})
		sys.Join(a, b)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("moved-link RPC failed")
		}
	})
}

func TestLatencyOrdering(t *testing.T) {
	// The paper's headline latency ordering: Chrysalis ≪ SODA < Charlotte
	// for small messages.
	rtt := map[lynx.Substrate]lynx.Duration{}
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis} {
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 3})
		var d lynx.Duration
		c := sys.Spawn("c", func(th *lynx.Thread, boot []*lynx.End) {
			start := th.Now()
			th.Connect(boot[0], "op", lynx.Msg{})
			d = lynx.Duration(th.Now() - start)
			th.Destroy(boot[0])
		})
		s := sys.Spawn("s", func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{})
			})
		})
		sys.Join(c, s)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		rtt[sub] = d
	}
	if !(rtt[lynx.Chrysalis] < rtt[lynx.SODA] && rtt[lynx.SODA] < rtt[lynx.Charlotte]) {
		t.Fatalf("latency ordering violated: %v", rtt)
	}
	if ratio := float64(rtt[lynx.Charlotte]) / float64(rtt[lynx.Chrysalis]); ratio < 10 {
		t.Fatalf("Charlotte/Chrysalis = %.1fx, want > 10x", ratio)
	}
}

func TestCrashPropagatesAcrossSubstrates(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis} {
		sub := sub
		t.Run(sub.String(), func(t *testing.T) {
			sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 5})
			var errA error
			a := sys.Spawn("a", func(th *lynx.Thread, boot []*lynx.End) {
				_, errA = th.Connect(boot[0], "op", lynx.Msg{})
			})
			b := sys.Spawn("b", func(th *lynx.Thread, boot []*lynx.End) {
				th.Sleep(2 * lynx.Millisecond)
				th.Process().Crash()
				th.Sleep(lynx.Millisecond)
			})
			sys.Join(a, b)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if !errors.Is(errA, lynx.ErrLinkDestroyed) {
				t.Fatalf("errA = %v", errA)
			}
		})
	}
}

func TestManyProcessRing(t *testing.T) {
	// N processes in a ring forwarding a token message; exercises boot
	// wiring and multi-process scheduling on every substrate.
	allSubstrates(t, func(t *testing.T, sub lynx.Substrate) {
		const n = 6
		sys := lynx.NewSystem(lynx.Config{Substrate: sub, Seed: 9})
		refs := make([]*lynx.ProcRef, n)
		visits := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			refs[i] = sys.Spawn(fmt.Sprint("p", i), func(th *lynx.Thread, boot []*lynx.End) {
				// boot[0] = link to previous, boot[1] = link to next
				// (p0: boot[0] is to p1... wiring below makes it uniform
				// except endpoints' order).
				var prev, next *lynx.End
				if i == 0 {
					next = boot[0]
					prev = boot[1]
					// p0 starts the token.
					if _, err := th.Connect(next, "token", lynx.Msg{Data: []byte{0}}); err != nil {
						t.Errorf("p0 inject: %v", err)
						return
					}
					visits[0]++
					th.Destroy(next)
					return
				}
				prev = boot[0]
				if i < n-1 {
					next = boot[1]
				} else {
					next = boot[1] // link back to p0
				}
				req, err := th.Receive(prev)
				if err != nil {
					t.Errorf("p%d receive: %v", i, err)
					return
				}
				visits[i]++
				th.Reply(req, lynx.Msg{})
				if i < n-1 {
					if _, err := th.Connect(next, "token", lynx.Msg{Data: req.Data()}); err != nil {
						t.Errorf("p%d forward: %v", i, err)
					}
					th.Destroy(next)
				}
			})
		}
		for i := 0; i < n-1; i++ {
			sys.Join(refs[i], refs[i+1])
		}
		sys.Join(refs[n-1], refs[0])
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n-1; i++ {
			if visits[i] == 0 {
				t.Errorf("p%d never visited", i)
			}
		}
	})
}

func TestDeterministicRuns(t *testing.T) {
	run := func() lynx.Time {
		sys := lynx.NewSystem(lynx.Config{Substrate: lynx.SODA, Seed: 42})
		c := sys.Spawn("c", func(th *lynx.Thread, boot []*lynx.End) {
			for i := 0; i < 3; i++ {
				th.Connect(boot[0], "op", lynx.Msg{Data: make([]byte, 100)})
			}
			th.Destroy(boot[0])
		})
		s := sys.Spawn("s", func(th *lynx.Thread, boot []*lynx.End) {
			th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
				st.Reply(req, lynx.Msg{Data: req.Data()})
			})
		})
		sys.Join(c, s)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestRunForHorizon(t *testing.T) {
	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Ideal, Seed: 1})
	a := sys.Spawn("looper", func(th *lynx.Thread, boot []*lynx.End) {
		for {
			if err := th.Sleep(10 * lynx.Millisecond); err != nil {
				return
			}
		}
	})
	_ = a
	if err := sys.RunFor(100 * lynx.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sys.Now() > lynx.Time(101*lynx.Millisecond) {
		t.Fatalf("ran past horizon: %v", sys.Now())
	}
}
