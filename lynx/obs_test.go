package lynx_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/lynx"
)

// runFigure1 replays the paper's figure 1 workload — link 3 moving at
// both ends simultaneously (A->B and D->C) — with the given sink
// attached to the system's recorder. It is the acceptance workload for
// the observability subsystem: every substrate emits kernel and
// protocol events for it.
func runFigure1(t *testing.T, sub lynx.Substrate, sink obs.Sink) {
	t.Helper()
	runFigure1Cfg(t, lynx.Config{Substrate: sub, Seed: 1}, sink)
}

// runFigure1Cfg is runFigure1 with a caller-supplied Config (the
// determinism tests replay it at several SimWorkers values).
func runFigure1Cfg(t *testing.T, cfg lynx.Config, sink obs.Sink) {
	t.Helper()
	sub := cfg.Substrate
	sys := lynx.NewSystem(cfg)
	sys.Obs().Attach(sink)
	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		th.Connect(boot[0], "take3a", lynx.Msg{Links: []*lynx.End{boot[1]}})
		th.Destroy(boot[0])
	})
	d := sys.Spawn("D", func(th *lynx.Thread, boot []*lynx.End) {
		th.Connect(boot[0], "take3d", lynx.Msg{Links: []*lynx.End{boot[1]}})
		th.Destroy(boot[0])
	})
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			return
		}
		l3 := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		if _, err := th.Connect(l3, "hello", lynx.Msg{Data: []byte("B")}); err != nil {
			return
		}
		th.Destroy(l3)
	})
	c := sys.Spawn("C", func(th *lynx.Thread, boot []*lynx.End) {
		req, err := th.Receive(boot[0])
		if err != nil {
			return
		}
		l3 := req.Links()[0]
		th.Reply(req, lynx.Msg{})
		r2, err := th.Receive(l3)
		if err != nil {
			return
		}
		th.Reply(r2, lynx.Msg{Data: append(r2.Data(), []byte("-C")...)})
	})
	sys.Join(a, b)
	sys.Join(d, c)
	sys.Join(a, d)
	if err := sys.Run(); err != nil {
		t.Fatalf("%v: run: %v", sub, err)
	}
}

// TestJSONLDeterminism: the same seed must produce a byte-identical
// JSONL event stream, on every substrate. This is what makes traces
// diffable across runs and the golden-trace workflow possible.
func TestJSONLDeterminism(t *testing.T) {
	for _, sub := range []lynx.Substrate{lynx.Charlotte, lynx.SODA, lynx.Chrysalis} {
		t.Run(sub.String(), func(t *testing.T) {
			var run1, run2 bytes.Buffer
			runFigure1(t, sub, &obs.JSONLExporter{W: &run1})
			runFigure1(t, sub, &obs.JSONLExporter{W: &run2})
			if run1.Len() == 0 {
				t.Fatal("no events emitted")
			}
			if !bytes.Equal(run1.Bytes(), run2.Bytes()) {
				t.Errorf("same seed produced different JSONL streams:\nrun1 %d bytes, run2 %d bytes",
					run1.Len(), run2.Len())
			}
			// Every line must be a standalone JSON object.
			for _, line := range strings.Split(strings.TrimRight(run1.String(), "\n"), "\n") {
				if !json.Valid([]byte(line)) {
					t.Fatalf("invalid JSONL line: %s", line)
				}
			}
		})
	}
}

// TestChromeExport: the Chrome trace of a simultaneous-move run must be
// valid JSON, show events from both moving link ends, and keep
// timestamps non-decreasing (virtual time never runs backwards).
func TestChromeExport(t *testing.T) {
	ch := obs.NewChromeExporter()
	runFigure1(t, lynx.Charlotte, ch)
	var buf bytes.Buffer
	if err := ch.Flush(&buf); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome export is not valid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
			Args struct {
				Detail string `json:"detail"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var sawEnd0, sawEnd1 bool
	last := -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Ts < last {
			t.Fatalf("timestamps run backwards: %v after %v", ev.Ts, last)
		}
		last = ev.Ts
		if strings.Contains(ev.Args.Detail, "end<3.0>") {
			sawEnd0 = true
		}
		if strings.Contains(ev.Args.Detail, "end<3.1>") {
			sawEnd1 = true
		}
	}
	if !sawEnd0 || !sawEnd1 {
		t.Errorf("want events from both moving ends of link 3; saw end<3.0>=%v end<3.1>=%v",
			sawEnd0, sawEnd1)
	}
}

// TestMetricsSnapshot: the registry the experiments read must be
// reachable through the public API and populated after a run, without
// any sink attached (counters are always on; events are opt-in).
func TestMetricsSnapshot(t *testing.T) {
	sys := lynx.NewSystem(lynx.Config{Substrate: lynx.Charlotte, Seed: 1})
	a := sys.Spawn("A", func(th *lynx.Thread, boot []*lynx.End) {
		th.Connect(boot[0], "ping", lynx.Msg{})
		th.Destroy(boot[0])
	})
	b := sys.Spawn("B", func(th *lynx.Thread, boot []*lynx.End) {
		th.Serve(boot[0], func(st *lynx.Thread, req *lynx.Request) {
			st.Reply(req, lynx.Msg{})
		})
	})
	sys.Join(a, b)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if m.Value(obs.MKernelMessages) == 0 {
		t.Errorf("kernel_messages_total = 0 after a remote op")
	}
	if m.SumPrefix(obs.MBindKernelSends) == 0 {
		t.Errorf("no per-proc %s counters after a remote op", obs.MBindKernelSends)
	}
	snap := m.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
}
